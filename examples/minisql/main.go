// minisql is a tiny SQL front end over the table/ record layer, served
// through the network client — the whole PR 9 stack in one REPL. Every
// statement crosses loopback TCP: CREATE TABLE declares a schema, CREATE
// [UNIQUE] INDEX backfills a secondary index online, INSERT writes typed
// rows (index entries and statistics maintained in the same transaction),
// and SELECT hands the planner a declarative query — WHERE / ORDER BY /
// LIMIT — which it serves as a point get, an index scan, a covering index
// scan, or a full scan. EXPLAIN shows which, with the cost estimate.
//
//	$ go run ./examples/minisql
//	minisql> CREATE TABLE users (id INT, city TEXT, age INT, PRIMARY KEY (id));
//	minisql> INSERT INTO users VALUES (1, 'ams', 34), (2, 'bos', 28);
//	minisql> CREATE INDEX by_city ON users (city);
//	minisql> EXPLAIN SELECT * FROM users WHERE city = 'ams';
//	index(by_city eq "ams") fetch cost=2
package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"rhtm"
	"rhtm/client"
	"rhtm/kv"
	"rhtm/server"
	"rhtm/store"
	"rhtm/table"
)

func main() {
	db, cleanup, err := dialBackend()
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	fmt.Println("minisql: typed tables with secondary indexes over a transactional KV store,")
	fmt.Println("served over loopback TCP. Type HELP for the grammar, QUIT to leave.")
	if err := repl(db, os.Stdin, os.Stdout, "minisql> "); err != nil {
		log.Fatal(err)
	}
}

// dialBackend builds the real stack — engine, sharded store, kv.Local —
// serves it over loopback TCP, and dials it back through the client, so
// the REPL's kv.DB is the network one.
func dialBackend() (kv.DB, func(), error) {
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 19))
	local := kv.NewLocal(rhtm.NewTL2(s), store.NewSharded(s, 4, store.Options{ArenaWords: 1 << 15}))
	srv := server.New(local)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	cl, err := client.Dial(addr.String())
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	return cl, func() { cl.Close(); srv.Close() }, nil
}

// repl reads statements line by line from in, executes them against db,
// and prints each result (or "error: ...") to out. A non-empty prompt is
// printed before each read. Statement errors do not end the loop.
func repl(db kv.DB, in io.Reader, out io.Writer, prompt string) error {
	s := &session{db: db, tables: map[string]*table.Table{}}
	sc := bufio.NewScanner(in)
	for {
		if prompt != "" {
			fmt.Fprint(out, prompt)
		}
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		line = strings.TrimSuffix(line, ";")
		if strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
			return nil
		}
		res, err := s.exec(line)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			continue
		}
		fmt.Fprintln(out, res)
	}
}

// session holds the REPL's table handles. The rows live in the DB; the
// handles only carry schemas, so re-binding after CREATE INDEX is cheap.
type session struct {
	db     kv.DB
	tables map[string]*table.Table
}

func (s *session) table(name string) (*table.Table, error) {
	tbl, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("no such table %q", name)
	}
	return tbl, nil
}

// exec runs one statement and returns its printable result.
func (s *session) exec(stmt string) (string, error) {
	toks, err := lex(stmt)
	if err != nil {
		return "", err
	}
	p := &parser{toks: toks}
	switch {
	case p.kw("CREATE"):
		switch {
		case p.kw("TABLE"):
			return s.createTable(p)
		case p.kw("UNIQUE"):
			if err := p.expectKw("INDEX"); err != nil {
				return "", err
			}
			return s.createIndex(p, true)
		case p.kw("INDEX"):
			return s.createIndex(p, false)
		}
		return "", errors.New("CREATE must be followed by TABLE or [UNIQUE] INDEX")
	case p.kw("INSERT"):
		return s.insert(p)
	case p.kw("SELECT"):
		tbl, q, err := s.selectQuery(p)
		if err != nil {
			return "", err
		}
		return renderSelect(tbl, q)
	case p.kw("EXPLAIN"):
		if err := p.expectKw("SELECT"); err != nil {
			return "", err
		}
		tbl, q, err := s.selectQuery(p)
		if err != nil {
			return "", err
		}
		return tbl.Explain(q)
	case p.kw("DELETE"):
		return s.deleteRow(p)
	case p.kw("HELP"):
		return helpText, nil
	}
	return "", errors.New("unrecognized statement (try HELP)")
}

const helpText = `statements:
  CREATE TABLE t (col INT|TEXT, ..., PRIMARY KEY (col, ...))
  CREATE [UNIQUE] INDEX idx ON t (col, ...)      -- online backfill
  INSERT INTO t VALUES (lit, ...), (lit, ...)
  SELECT *|cols FROM t [WHERE col op lit [AND ...]] [ORDER BY col] [LIMIT n]
      op: =  <  <=  >  >=
  EXPLAIN SELECT ...                             -- show the planner's pick
  DELETE FROM t WHERE pk = lit [AND ...]         -- full primary key only
  QUIT`

func (s *session) createTable(p *parser) (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	if _, exists := s.tables[name]; exists {
		return "", fmt.Errorf("table %q already exists", name)
	}
	if err := p.expectP("("); err != nil {
		return "", err
	}
	sch := table.Schema{Name: name}
	for {
		if p.kw("PRIMARY") {
			if err := p.expectKw("KEY"); err != nil {
				return "", err
			}
			if err := p.expectP("("); err != nil {
				return "", err
			}
			if sch.Key, err = p.identList(); err != nil {
				return "", err
			}
		} else {
			var f table.Field
			if f.Name, err = p.ident(); err != nil {
				return "", err
			}
			tname, err := p.ident()
			if err != nil {
				return "", err
			}
			switch strings.ToUpper(tname) {
			case "INT", "INTEGER":
				f.Type = table.TInt64
			case "TEXT", "STRING", "VARCHAR":
				f.Type = table.TString
			default:
				return "", fmt.Errorf("unknown type %q (INT or TEXT)", tname)
			}
			sch.Fields = append(sch.Fields, f)
		}
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectP(")"); err != nil {
		return "", err
	}
	if len(sch.Key) == 0 {
		return "", errors.New("CREATE TABLE needs a PRIMARY KEY clause")
	}
	tbl, err := table.New(s.db, sch)
	if err != nil {
		return "", err
	}
	s.tables[name] = tbl
	return "CREATE TABLE", nil
}

// createIndex declares the index on a fresh schema binding and backfills
// it online — existing rows get entries in bounded batches while the
// handle is already live for new writes.
func (s *session) createIndex(p *parser, unique bool) (string, error) {
	idxName, err := p.ident()
	if err != nil {
		return "", err
	}
	if err := p.expectKw("ON"); err != nil {
		return "", err
	}
	tname, err := p.ident()
	if err != nil {
		return "", err
	}
	tbl, err := s.table(tname)
	if err != nil {
		return "", err
	}
	if err := p.expectP("("); err != nil {
		return "", err
	}
	cols, err := p.identList()
	if err != nil {
		return "", err
	}
	sch := tbl.Schema()
	for _, ix := range sch.Indexes {
		if ix.Name == idxName {
			return "", fmt.Errorf("index %q already exists", idxName)
		}
	}
	sch.Indexes = append(sch.Indexes, table.Index{Name: idxName, Fields: cols, Unique: unique})
	ntbl, err := table.New(s.db, sch)
	if err != nil {
		return "", err
	}
	stats, err := ntbl.BuildIndex(idxName, 64)
	if err != nil {
		return "", err
	}
	s.tables[tname] = ntbl
	return fmt.Sprintf("CREATE INDEX (%d rows backfilled in %d batches)",
		stats.Rows, stats.Batches), nil
}

func (s *session) insert(p *parser) (string, error) {
	if err := p.expectKw("INTO"); err != nil {
		return "", err
	}
	tname, err := p.ident()
	if err != nil {
		return "", err
	}
	tbl, err := s.table(tname)
	if err != nil {
		return "", err
	}
	if err := p.expectKw("VALUES"); err != nil {
		return "", err
	}
	fields := tbl.Schema().Fields
	count := 0
	for {
		if err := p.expectP("("); err != nil {
			return "", err
		}
		row := make([]table.Value, 0, len(fields))
		for i, f := range fields {
			if i > 0 {
				if err := p.expectP(","); err != nil {
					return "", err
				}
			}
			v, err := litValue(f, p.next())
			if err != nil {
				return "", err
			}
			row = append(row, v)
		}
		if err := p.expectP(")"); err != nil {
			return "", err
		}
		if err := tbl.Insert(row); err != nil {
			return "", err
		}
		count++
		if !p.punct(",") {
			break
		}
	}
	if err := p.end(); err != nil {
		return "", err
	}
	return fmt.Sprintf("INSERT %d", count), nil
}

// selectQuery parses the clause after SELECT into the table handle and
// the declarative Query the planner executes.
func (s *session) selectQuery(p *parser) (*table.Table, table.Query, error) {
	var q table.Query
	if !p.punct("*") {
		for {
			f, err := p.ident()
			if err != nil {
				return nil, q, err
			}
			q.Fields = append(q.Fields, f)
			if !p.punct(",") {
				break
			}
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, q, err
	}
	tname, err := p.ident()
	if err != nil {
		return nil, q, err
	}
	tbl, err := s.table(tname)
	if err != nil {
		return nil, q, err
	}
	if p.kw("WHERE") {
		if q.Conds, err = s.conds(p, tbl); err != nil {
			return nil, q, err
		}
	}
	if p.kw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, q, err
		}
		if q.Order, err = p.ident(); err != nil {
			return nil, q, err
		}
	}
	if p.kw("LIMIT") {
		t := p.next()
		n, convErr := strconv.Atoi(t.s)
		if t.kind != 'n' || convErr != nil || n <= 0 {
			return nil, q, fmt.Errorf("LIMIT needs a positive integer, got %q", t.s)
		}
		q.Limit = n
	}
	return tbl, q, p.end()
}

// conds parses "field op lit [AND ...]" into one Cond per field, merging
// bounds so "age >= 30 AND age < 40" becomes a single range condition.
func (s *session) conds(p *parser, tbl *table.Table) ([]table.Cond, error) {
	var order []string
	byField := map[string]*table.Cond{}
	for {
		fname, err := p.ident()
		if err != nil {
			return nil, err
		}
		field, ok := fieldOf(tbl, fname)
		if !ok {
			return nil, fmt.Errorf("no column %q in table %q", fname, tbl.Schema().Name)
		}
		op := p.next()
		if op.kind != 'p' || !strings.ContainsAny(op.s, "=<>") {
			return nil, fmt.Errorf("expected comparison operator, got %q", op.s)
		}
		v, err := litValue(field, p.next())
		if err != nil {
			return nil, err
		}
		c := byField[fname]
		if c == nil {
			c = &table.Cond{Field: fname}
			byField[fname] = c
			order = append(order, fname)
		}
		switch op.s {
		case "=":
			c.Eq = &v
		case ">=":
			c.Lo = &v
		case "<":
			c.Hi = &v
		case ">":
			nv := successor(v)
			c.Lo = &nv
		case "<=":
			nv := successor(v)
			c.Hi = &nv
		default:
			return nil, fmt.Errorf("unsupported operator %q", op.s)
		}
		if c.Eq != nil && (c.Lo != nil || c.Hi != nil) {
			return nil, fmt.Errorf("conflicting conditions on %q", fname)
		}
		if !p.kw("AND") {
			break
		}
	}
	conds := make([]table.Cond, 0, len(order))
	for _, f := range order {
		conds = append(conds, *byField[f])
	}
	return conds, nil
}

func (s *session) deleteRow(p *parser) (string, error) {
	if err := p.expectKw("FROM"); err != nil {
		return "", err
	}
	tname, err := p.ident()
	if err != nil {
		return "", err
	}
	tbl, err := s.table(tname)
	if err != nil {
		return "", err
	}
	if err := p.expectKw("WHERE"); err != nil {
		return "", err
	}
	conds, err := s.conds(p, tbl)
	if err != nil {
		return "", err
	}
	if err := p.end(); err != nil {
		return "", err
	}
	// Only a fully pinned primary key deletes: match each key field to
	// exactly one equality.
	key := tbl.Schema().Key
	if len(conds) != len(key) {
		return "", fmt.Errorf("DELETE needs equality on the full primary key (%s)",
			strings.Join(key, ", "))
	}
	pk := make([]table.Value, len(key))
	for _, c := range conds {
		i := indexOf(key, c.Field)
		if i < 0 || c.Eq == nil {
			return "", fmt.Errorf("DELETE needs equality on the full primary key (%s)",
				strings.Join(key, ", "))
		}
		pk[i] = *c.Eq
	}
	switch err := tbl.Delete(pk...); {
	case errors.Is(err, table.ErrRowNotFound):
		return "DELETE 0", nil
	case err != nil:
		return "", err
	}
	return "DELETE 1", nil
}

// renderSelect executes the query and formats the rows.
func renderSelect(tbl *table.Table, q table.Query) (string, error) {
	rows, err := tbl.Select(q)
	if err != nil {
		return "", err
	}
	cols := q.Fields
	if cols == nil {
		for _, f := range tbl.Schema().Fields {
			cols = append(cols, f.Name)
		}
	}
	var b strings.Builder
	b.WriteString(strings.Join(cols, " | ") + "\n")
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		b.WriteString(strings.Join(parts, " | ") + "\n")
	}
	plural := "s"
	if len(rows) == 1 {
		plural = ""
	}
	fmt.Fprintf(&b, "(%d row%s)", len(rows), plural)
	return b.String(), nil
}

// --- small helpers ---

func fieldOf(tbl *table.Table, name string) (table.Field, bool) {
	for _, f := range tbl.Schema().Fields {
		if f.Name == name {
			return f, true
		}
	}
	return table.Field{}, false
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

// litValue converts one literal token to the field's type.
func litValue(f table.Field, t tok) (table.Value, error) {
	switch f.Type {
	case table.TInt64:
		n, err := strconv.ParseInt(t.s, 10, 64)
		if t.kind != 'n' || err != nil {
			return table.Value{}, fmt.Errorf("column %q needs an integer, got %q", f.Name, t.s)
		}
		return table.Int64(n), nil
	case table.TString:
		if t.kind != 's' {
			return table.Value{}, fmt.Errorf("column %q needs a quoted string, got %q", f.Name, t.s)
		}
		return table.String(t.s), nil
	}
	return table.Value{}, fmt.Errorf("column %q has unsupported type %s", f.Name, f.Type)
}

// successor maps the strict/inclusive operators onto the Cond contract
// (inclusive Lo, exclusive Hi): the next value up in the type's order.
func successor(v table.Value) table.Value {
	if v.Type() == table.TInt64 {
		return table.Int64(v.Int() + 1)
	}
	return table.String(v.Text() + "\x00")
}

// --- lexer / parser ---

// tok is one token: kind 'i' identifier/keyword, 'n' integer literal,
// 's' string literal (quotes stripped), 'p' punctuation/operator.
type tok struct {
	kind byte
	s    string
}

func isIdentByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case !first && (c >= '0' && c <= '9'):
		return true
	}
	return false
}

func lex(src string) ([]tok, error) {
	var toks []tok
	for i := 0; i < len(src); {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '\'':
			var b strings.Builder
			j := i + 1
			for {
				if j >= len(src) {
					return nil, errors.New("unterminated string literal")
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' { // '' escapes a quote
						b.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				b.WriteByte(src[j])
				j++
			}
			toks = append(toks, tok{'s', b.String()})
			i = j + 1
		case c == '<' || c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, tok{'p', src[i : i+2]})
				i += 2
			} else {
				toks = append(toks, tok{'p', string(c)})
				i++
			}
		case c == '(' || c == ')' || c == ',' || c == '=' || c == '*':
			toks = append(toks, tok{'p', string(c)})
			i++
		case c == '-' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			if c == '-' && j == i+1 {
				return nil, errors.New("stray '-'")
			}
			toks = append(toks, tok{'n', src[i:j]})
			i = j
		case isIdentByte(c, true):
			j := i + 1
			for j < len(src) && isIdentByte(src[j], false) {
				j++
			}
			toks = append(toks, tok{'i', src[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q", string(c))
		}
	}
	return toks, nil
}

type parser struct {
	toks []tok
	pos  int
}

// next consumes and returns the next token (zero tok at end of input).
func (p *parser) next() tok {
	if p.pos >= len(p.toks) {
		return tok{}
	}
	p.pos++
	return p.toks[p.pos-1]
}

// kw consumes the next token iff it is the given keyword (case-folded).
func (p *parser) kw(w string) bool {
	if p.pos < len(p.toks) && p.toks[p.pos].kind == 'i' && strings.EqualFold(p.toks[p.pos].s, w) {
		p.pos++
		return true
	}
	return false
}

// punct consumes the next token iff it is the given punctuation.
func (p *parser) punct(s string) bool {
	if p.pos < len(p.toks) && p.toks[p.pos].kind == 'p' && p.toks[p.pos].s == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(w string) error {
	if !p.kw(w) {
		return fmt.Errorf("expected %s", w)
	}
	return nil
}

func (p *parser) expectP(s string) error {
	if !p.punct(s) {
		return fmt.Errorf("expected %q", s)
	}
	return nil
}

// ident consumes an identifier.
func (p *parser) ident() (string, error) {
	if p.pos < len(p.toks) && p.toks[p.pos].kind == 'i' {
		p.pos++
		return p.toks[p.pos-1].s, nil
	}
	return "", errors.New("expected identifier")
}

// identList consumes "ident {, ident} )" and returns the names.
func (p *parser) identList() ([]string, error) {
	var out []string
	for {
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectP(")"); err != nil {
		return nil, err
	}
	return out, nil
}

// end fails if input remains.
func (p *parser) end() error {
	if p.pos < len(p.toks) {
		return fmt.Errorf("trailing input at %q", p.toks[p.pos].s)
	}
	return nil
}
