package cluster

import (
	"bytes"
	"sort"

	"rhtm"
)

// Snapshot scans: the cluster has no global clock or shared conflict
// detection, so an ordered range read spanning Systems cannot be one engine
// transaction. ScanSnapshot builds the snapshot optimistically instead:
// each System's in-range entries are collected in one local engine
// transaction (atomic per System, and refused while any in-range key has a
// pending 2PC intent — the range is undecided then, exactly as IntentOn
// makes a single key undecided), the per-System results are merged by key,
// and the whole scan is re-executed once more for validation. Only when
// both passes observe identical entries is the result returned: any commit
// that landed between the per-System reads of pass one flips a key and
// fails the comparison, so a returned snapshot is the committed state at
// some instant between the two passes. The comparison is by per-entry
// *revision* (the store's monotonic commit version), which closes the ABA
// hole value-based validation has: a key changed and changed back between
// the passes still advanced its revision and fails the comparison.

// Entry is one key-value pair of a snapshot scan, in ascending key order,
// with the revision its value was committed at.
type Entry struct {
	Key   []byte
	Value []byte
	Rev   uint64
}

// ScanSnapshot returns a consistent ordered snapshot of the keys in
// [start, end) (nil bounds are unbounded), at most limit entries (0 =
// unbounded). Torn or intent-blocked passes retry with backoff up to
// Config.MaxAttempts, then ErrContention.
func (cl *Client) ScanSnapshot(start, end []byte, limit int) ([]Entry, error) {
	for attempt := 0; attempt < cl.c.cfg.MaxAttempts; attempt++ {
		first, err := cl.scanOnce(start, end, limit)
		if err == errConflict {
			cl.c.intentWaits.Add(1)
			cl.backoff(attempt)
			continue
		}
		if err != nil {
			return nil, err
		}
		second, err := cl.scanOnce(start, end, limit)
		if err == errConflict {
			cl.c.intentWaits.Add(1)
			cl.backoff(attempt)
			continue
		}
		if err != nil {
			return nil, err
		}
		if scansEqual(first, second) {
			cl.c.snapshotScans.Add(1)
			return first, nil
		}
		cl.c.scanRetries.Add(1)
		cl.backoff(attempt)
	}
	return nil, ErrContention
}

// scanOnce collects one pass: per System, one engine transaction gathering
// up to limit in-range entries (each System can contribute at most limit of
// the merged prefix), conflicting when the *observed* range holds a pending
// write intent (shared read intents pin values without changing them and do
// not block scans). The intent check is bounded to what the System actually
// yielded: when its collection stops at the limit with last key L, only
// [start, succ(L)) must be intent-free — an intent past L is for a key that
// cannot enter the merged prefix, because this System alone already has
// limit keys ≤ L, so the limit-th smallest key overall is ≤ L. A collection
// that exhausts the range is checked over all of [start, end), which also
// catches intents for keys *absent* from the index (a pending cross-System
// insert is a phantom-in-waiting).
func (cl *Client) scanOnce(start, end []byte, limit int) ([]Entry, error) {
	var all []Entry
	for _, n := range cl.c.nodes {
		var local []Entry
		err := cl.threads[n.id].Atomic(func(tx rhtm.Tx) error {
			local = local[:0]
			n.st.ScanLimitRev(tx, start, end, limit, func(k, v []byte, rev uint64) bool {
				local = append(local, Entry{Key: k, Value: v, Rev: rev})
				return true
			})
			checkEnd := end
			if limit > 0 && len(local) == limit {
				last := local[len(local)-1].Key
				checkEnd = append(append(make([]byte, 0, len(last)+1), last...), 0)
			}
			if n.st.HasWriteIntentInRange(tx, start, checkEnd) {
				return errConflict
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		all = append(all, local...)
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) < 0 })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all, nil
}

// scansEqual reports whether two passes observed identical entries, by key
// and revision: equal revisions imply equal values (every write advances
// the revision), with no ABA blind spot.
func scansEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || a[i].Rev != b[i].Rev {
			return false
		}
	}
	return true
}
