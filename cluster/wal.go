package cluster

import (
	"rhtm"
	"rhtm/store"
	"rhtm/wal"
)

// Durability. A cluster binds to one WAL stream per System (the redo log of
// that System's committed transactions, local and 2PC applies alike) plus
// the coordinator decision log. The commit-order argument is per System:
// every committed transaction there advanced the System store's revision
// word, so the stream's sequence gate orders frames exactly as the System
// committed them, whatever engine ran the transactions.
//
// Cross-System atomicity cannot come from per-System streams alone, so the
// 2PC coordinator's decision becomes durable before phase 2 runs: commit
// decisions (with the full write set) are group-committed to the decision
// log and synced — the durable commit point — then the per-System applies
// are logged and synced on their own streams, then a resolution mark for
// the transaction is appended to the decision log. A recovered coordinator
// therefore resolves every in-doubt transaction forward: a logged commit
// decision without its mark is re-applied (skipping writes the per-System
// logs already show, keyed by the cluster transaction id), and a decision
// that never reached the log aborts by omission — its intents were volatile.
// Abort decisions are never logged; absence is the abort record.

// WALSet binds a cluster to its durability streams.
type WALSet struct {
	// Data holds one writer per System, indexed by node id.
	Data []*wal.Writer
	// Coord is the coordinator decision log (always fully synchronous —
	// the decision sync is the 2PC commit point).
	Coord *wal.Writer
}

// AttachWAL binds the streams and wires each System store's WAL counters.
// Call during single-threaded setup, after recovery has replayed the
// streams into the stores (see the kv layer's OpenCluster).
func (c *Cluster) AttachWAL(ws *WALSet) {
	c.wal = ws
	for i, n := range c.nodes {
		w := ws.Data[i]
		n.st.SetWALStats(func() store.WALStats { return StoreWALStats(w.Stats()) })
	}
}

// WAL returns the attached streams (nil when the cluster runs volatile).
func (c *Cluster) WAL() *WALSet { return c.wal }

// RestoreTxID floors the cluster's transaction-id counter — recovery calls
// it with the largest id found in the logs so new cross-System transactions
// never reuse a logged id.
func (c *Cluster) RestoreTxID(max uint64) {
	for {
		cur := c.nextTxID.Load()
		if cur >= max || c.nextTxID.CompareAndSwap(cur, max) {
			return
		}
	}
}

// StoreWALStats adapts a writer's counters to the store's stats surface.
func StoreWALStats(s wal.Stats) store.WALStats {
	return store.WALStats{
		FramesAppended: s.Frames,
		BytesAppended:  s.Bytes,
		TxnsLogged:     s.Txns,
		Syncs:          s.Syncs,
		DurableLSN:     s.DurableLSN,
		CheckpointLSN:  s.CheckpointLSN,
	}
}

// logLocal publishes one committed single-System transaction to the
// System's stream. No-op without a WAL or for read-only transactions.
func (cl *Client) logLocal(nodeID int, recs []wal.Op) error {
	if cl.c.wal == nil || len(recs) == 0 {
		return nil
	}
	return cl.c.wal.Data[nodeID].Commit(0, 0, recs)
}

// logApply publishes one participant's phase-2 applies and forces them
// durable: whatever the data streams' relaxed sync policy, a decided
// cross-System transaction must not be torn by a crash, so its applies
// sync before the transaction is marked resolved.
func (cl *Client) logApply(nodeID int, txid uint64, recs []wal.Op) error {
	if cl.c.wal == nil || len(recs) == 0 {
		return nil
	}
	w := cl.c.wal.Data[nodeID]
	if err := w.Commit(txid, wal.FlagCross, recs); err != nil {
		return err
	}
	return w.Sync()
}

// CheckpointWAL writes a full-state checkpoint to every System's stream and
// truncates the coordinator log's resolved history. It drains in-flight
// cross-System commits (they hold the drain lock in read mode across
// decision, applies, and mark), then:
//
//  1. syncs the decision log, making every decision and resolution mark
//     durable — after this, recovery never needs pre-checkpoint data
//     frames to resolve an in-doubt transaction;
//  2. snapshots each System's store in one engine transaction and writes
//     it as that stream's checkpoint (synced);
//  3. appends a global mark to the decision log: everything before it is
//     resolved and folded into the checkpoints.
//
// Local commits keep flowing throughout — only 2PC decisions pause.
func (cl *Client) CheckpointWAL() error {
	c := cl.c
	if c.wal == nil {
		return wal.ErrNoWAL
	}
	c.walMu.Lock()
	defer c.walMu.Unlock()
	if err := c.wal.Coord.Sync(); err != nil {
		return err
	}
	for i, n := range c.nodes {
		node := n
		thread := cl.threads[i]
		err := c.wal.Data[i].Checkpoint(func() ([]wal.Op, error) {
			var ops []wal.Op
			err := thread.Atomic(func(tx rhtm.Tx) error {
				ops = ops[:0]
				node.st.ScanMeta(tx, func(k, v []byte, rev, lease uint64) bool {
					ops = append(ops, wal.Op{
						Kind: wal.OpPut, Key: copyVal(k), Value: copyVal(v),
						Rev: rev, Lease: lease,
					})
					return true
				})
				return nil
			})
			return ops, err
		})
		if err != nil {
			return err
		}
	}
	if err := c.wal.Coord.Mark(0, wal.FlagGlobal); err != nil {
		return err
	}
	return c.wal.Coord.Sync()
}
