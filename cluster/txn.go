package cluster

import (
	"bytes"
	"errors"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"rhtm"
	"rhtm/obs"
	"rhtm/store"
	"rhtm/wal"
)

// errConflict is the internal sentinel a prepare or validation body returns
// to abort cleanly and signal "retry the whole transaction". It never
// escapes the package.
var errConflict = errors.New("cluster: conflict")

// errPhantom is errConflict's sibling for scan-range revalidation failures:
// a key entered (or is about to enter, as a pending intent) a range this
// transaction scanned. Counted separately, retried identically. It never
// escapes the package.
var errPhantom = errors.New("cluster: phantom")

// Client is a session against the cluster: it owns one engine thread per
// System. Like rhtm.Thread, a Client is not safe for concurrent use — each
// goroutine obtains its own from NewClient.
type Client struct {
	c       *Cluster
	threads []rhtm.Thread
	rng     *rand.Rand
	lastRev uint64 // max revision stamped by the most recent committed Txn/Batch
	// sink, when non-nil, receives the 2PC phase and coordinator-sync
	// stages of this session's commits (SetStageSink). Single-session
	// state like everything else on Client.
	sink obs.StageRecorder
}

// SetStageSink attaches (or with nil detaches) a per-stage trace sink:
// commits from then on report 2pc_prepare, wal_sync (the coordinator
// decision sync), and 2pc_finish stage durations to it. Client is
// single-session, so callers set it around one call and clear it after;
// the nil default costs one predicted branch per phase.
func (cl *Client) SetStageSink(s obs.StageRecorder) { cl.sink = s }

// NewClient registers a thread on every System's engine and returns the
// session. Panics (via the engines) when a System's thread-ID space is
// oversubscribed; see Config.MaxThreads.
func (c *Cluster) NewClient() *Client {
	cl := &Client{
		c:   c,
		rng: rand.New(rand.NewSource(c.clientSeq.Add(1) * 0x9e3779b9)),
	}
	for _, n := range c.nodes {
		cl.threads = append(cl.threads, n.eng.NewThread())
	}
	return cl
}

// backoff yields, then sleeps with randomized exponential growth, between
// conflicting attempts.
func (cl *Client) backoff(attempt int) {
	if attempt < 4 {
		runtime.Gosched()
		return
	}
	shift := attempt
	if shift > 10 {
		shift = 10
	}
	time.Sleep(time.Duration(1+cl.rng.Intn(1<<shift)) * time.Microsecond)
}

// LastCommitRev returns the highest revision stamped by this client's most
// recent committed Txn or Batch — 0 for read-only footprints. Like
// everything else on Client it is single-session state: read it right
// after the call returns.
func (cl *Client) LastCommitRev() uint64 { return cl.lastRev }

// StoreStats sums the committed-state store counters of every System, each
// sampled in its own read-only transaction on this client's registered
// threads. Safe to call from running workloads: every field is an O(1)
// counter read, and intent-conflict waits are retried like any local read.
func (cl *Client) StoreStats() (store.Stats, error) {
	var total store.Stats
	for id, n := range cl.c.nodes {
		node := n
		var s store.Stats
		err := cl.localRetry(func() error {
			return cl.threads[id].Atomic(func(tx rhtm.Tx) error {
				s = node.st.Stats(tx)
				return nil
			})
		})
		if err != nil {
			return store.Stats{}, err
		}
		total.Add(s)
	}
	return total, nil
}

// Get returns key's committed value with a local transaction on the owning
// System. A pending *write* intent makes the value undecided (its
// cross-System writer may commit or abort), so the read waits for
// resolution rather than returning a value that may be mid-replacement;
// shared read intents pin values without changing them and never block a
// read.
func (cl *Client) Get(key []byte) ([]byte, bool, error) {
	rec, err := cl.readCommitted(key)
	if err == nil {
		cl.c.localTxns.Add(1)
	}
	return rec.val, rec.ok, err
}

// GetRev is Get with the key's revision — the owning System's monotonic
// commit version, the token conditional writes are guarded by.
func (cl *Client) GetRev(key []byte) ([]byte, uint64, bool, error) {
	rec, err := cl.readCommitted(key)
	if err == nil {
		cl.c.localTxns.Add(1)
	}
	return rec.val, rec.rev, rec.ok, err
}

// readCommitted is Get without the local-transaction counter bump: Txn
// read-throughs use it so the harness's local-vs-cross traffic split counts
// client-level operations, not the reads a cross-System transaction issues
// while building its snapshot. The returned record carries the value, its
// revision, and its lease attachment.
func (cl *Client) readCommitted(key []byte) (readRec, error) {
	n := cl.c.nodes[cl.c.router.SystemFor(key)]
	var rec readRec
	err := cl.localRetry(func() error {
		return cl.threads[n.id].Atomic(func(tx rhtm.Tx) error {
			if _, held := n.st.WriteIntentOn(tx, key); held {
				return errConflict
			}
			rec.val, rec.rev, rec.lease, rec.ok = n.st.Read(tx, key)
			rec.leaseKnown = true
			return nil
		})
	})
	return rec, err
}

// Put stores key→value with a local transaction on the owning System,
// waiting out any pending intent (writers wait for pinned readers too).
func (cl *Client) Put(key, value []byte) error {
	return cl.PutLease(key, value, 0)
}

// PutLease is Put with a lease attachment (0 detaches).
func (cl *Client) PutLease(key, value []byte, lease uint64) error {
	n := cl.c.nodes[cl.c.router.SystemFor(key)]
	var rev uint64
	err := cl.localRetry(func() error {
		return cl.threads[n.id].Atomic(func(tx rhtm.Tx) error {
			if n.st.AnyIntentOn(tx, key) {
				return errConflict
			}
			var err error
			rev, err = n.st.PutStamped(tx, key, value, lease)
			return err
		})
	})
	if err == nil {
		cl.c.localTxns.Add(1)
		if cl.c.wal != nil {
			return cl.logLocal(n.id, []wal.Op{{
				Kind: wal.OpPut, Key: copyVal(key), Value: copyVal(value),
				Rev: rev, Lease: lease,
			}})
		}
	}
	return err
}

// Delete removes key with a local transaction on the owning System,
// waiting out any pending intent.
func (cl *Client) Delete(key []byte) (bool, error) {
	n := cl.c.nodes[cl.c.router.SystemFor(key)]
	var present bool
	var rev uint64
	err := cl.localRetry(func() error {
		return cl.threads[n.id].Atomic(func(tx rhtm.Tx) error {
			if n.st.AnyIntentOn(tx, key) {
				return errConflict
			}
			rev, present = n.st.DeleteStamped(tx, key)
			return nil
		})
	})
	if err == nil {
		cl.c.localTxns.Add(1)
		if present && cl.c.wal != nil {
			if werr := cl.logLocal(n.id, []wal.Op{{Kind: wal.OpDelete, Key: copyVal(key), Rev: rev}}); werr != nil {
				return present, werr
			}
		}
	}
	return present, err
}

// localRetry drives a single-System operation, retrying intent conflicts
// with backoff up to MaxAttempts. Counters are the caller's business:
// client-level operations bump localTxns, Txn read-throughs do not.
func (cl *Client) localRetry(op func() error) error {
	for attempt := 0; attempt < cl.c.cfg.MaxAttempts; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		if err != errConflict {
			return err
		}
		cl.c.intentWaits.Add(1)
		cl.backoff(attempt)
	}
	return ErrContention
}

// --- multi-key transactions ---

// copyVal clones v, preserving non-nilness: multi-key results use nil to
// mean "absent", so a present empty value must stay a non-nil empty slice.
func copyVal(v []byte) []byte {
	out := make([]byte, len(v))
	copy(out, v)
	return out
}

// writeRec is one buffered write.
type writeRec struct {
	val   []byte
	lease uint64
	del   bool
}

// readRec is one recorded committed read. Commit validates the observation
// by revision: a key's revision changes on every write, so equal revisions
// imply the value (and lease) are untouched — strictly stronger than the
// value comparison it replaces, since it also catches ABA (a key changed
// and changed back still advanced its revision).
type readRec struct {
	val   []byte
	rev   uint64
	lease uint64
	ok    bool
	// leaseKnown marks records seeded by snapshot scans, which carry
	// revisions but not lease attachments.
	leaseKnown bool
}

// Txn is an optimistic buffered transaction: Get reads through to
// committed state and records the observed value, Put/Delete buffer.
// Commit (driven by Client.Txn) validates every recorded read and applies
// the buffer atomically — locally when one System owns the whole
// footprint, via two-phase commit when several do.
type Txn struct {
	cl     *Client
	reads  map[string]readRec
	writes map[string]writeRec
	scans  []scanRange
}

// scanRange is one range a Txn.Scan observed, re-validated at commit for
// phantom protection: a committed key inside it that is not in the read set
// entered after the scan, and a pending write intent inside it is a phantom
// in waiting. Bounds follow Scan's convention: [start, end), nil end
// unbounded (a limited scan records succ(last yielded key) as its end — keys
// past the limit were never observed and are not protected).
type scanRange struct {
	start, end []byte
}

// Get returns key's value as of this transaction: buffered writes win,
// then the first committed read is reused (one consistent observation per
// key per attempt).
func (t *Txn) Get(key []byte) ([]byte, bool, error) {
	k := string(key)
	if w, ok := t.writes[k]; ok {
		if w.del {
			return nil, false, nil
		}
		return copyVal(w.val), true, nil
	}
	rec, err := t.read(key)
	if err != nil {
		return nil, false, err
	}
	return copyVal(rec.val), rec.ok, nil
}

// read returns the transaction's recorded observation of key, reading
// through to committed state (and recording the observation for commit
// validation) on first touch.
func (t *Txn) read(key []byte) (readRec, error) {
	k := string(key)
	if r, ok := t.reads[k]; ok {
		return r, nil
	}
	rec, err := t.cl.readCommitted(key)
	if err != nil {
		return readRec{}, err
	}
	t.reads[k] = rec
	return rec, nil
}

// Revision returns key's revision as of this transaction (0 for an absent
// key). Buffered writes have no revision yet — they are assigned one at
// commit — so Revision reports the committed observation the commit will
// validate.
func (t *Txn) Revision(key []byte) (uint64, bool, error) {
	rec, err := t.read(key)
	if err != nil {
		return 0, false, err
	}
	return rec.rev, rec.ok, nil
}

// Lease returns key's attached lease id as of this transaction (0 = none).
// Observations seeded by a snapshot scan lack lease metadata; Lease
// re-reads the committed entry then — divergence from the scan's revision
// is caught by commit validation like any other conflict.
func (t *Txn) Lease(key []byte) (uint64, bool, error) {
	if w, ok := t.writes[string(key)]; ok {
		if w.del {
			return 0, false, nil
		}
		return w.lease, true, nil
	}
	rec, err := t.read(key)
	if err != nil {
		return 0, false, err
	}
	if rec.ok && !rec.leaseKnown {
		fresh, err := t.cl.readCommitted(key)
		if err != nil {
			return 0, false, err
		}
		return fresh.lease, fresh.ok, nil
	}
	return rec.lease, rec.ok, nil
}

// Put buffers key→value (the slice is copied), detaching any lease.
func (t *Txn) Put(key, value []byte) {
	t.writes[string(key)] = writeRec{val: copyVal(value)}
}

// PutLease buffers key→value with a lease attachment.
func (t *Txn) PutLease(key, value []byte, lease uint64) {
	t.writes[string(key)] = writeRec{val: copyVal(value), lease: lease}
}

// Delete buffers key's removal.
func (t *Txn) Delete(key []byte) {
	t.writes[string(key)] = writeRec{del: true}
}

// inRange reports start <= k < end with nil bounds unbounded.
func inRange(k string, start, end []byte) bool {
	return (start == nil || k >= string(start)) && (end == nil || k < string(end))
}

// Scan returns an ordered snapshot of [start, end) as of this transaction:
// a validated committed snapshot (Client.ScanSnapshot) overlaid with the
// transaction's own buffered writes and earlier reads, at most limit
// entries (0 = unbounded). Every committed entry the scan yields is
// recorded as a read, so commit re-validates it — and the *range itself* is
// recorded too, so commit additionally refuses when a key outside the read
// set has entered it (phantom protection; see scansValid for the exact
// guarantee). A limited scan protects only the observed prefix, up to the
// successor of the last key the snapshot fetched.
func (t *Txn) Scan(start, end []byte, limit int) ([]Entry, error) {
	fetch := 0
	if limit > 0 {
		// Buffered deletes can evict entries from the prefix; over-fetch by
		// the write-set size so the overlay can backfill.
		fetch = limit + len(t.writes)
	}
	raw, err := t.cl.ScanSnapshot(start, end, fetch)
	if err != nil {
		return nil, err
	}
	var r scanRange // nil bounds stay nil (unbounded)
	if start != nil {
		r.start = copyVal(start)
	}
	if end != nil {
		r.end = copyVal(end)
	}
	if fetch > 0 && len(raw) == fetch {
		// The snapshot was clipped at the over-fetch bound: only the prefix
		// up to the last fetched key was observed, so only it is protected.
		last := raw[len(raw)-1].Key
		r.end = append(append(make([]byte, 0, len(last)+1), last...), 0)
	}
	t.scans = append(t.scans, r)
	merged := map[string][]byte{}
	for _, e := range raw {
		k := string(e.Key)
		if r, seen := t.reads[k]; seen {
			// Reuse the transaction's first observation of the key (commit
			// validation will catch divergence from the snapshot).
			if r.ok {
				merged[k] = r.val
			}
			continue
		}
		t.reads[k] = readRec{val: e.Value, rev: e.Rev, ok: true}
		merged[k] = e.Value
	}
	for k, w := range t.writes {
		if !inRange(k, start, end) {
			continue
		}
		if w.del {
			delete(merged, k)
		} else {
			merged[k] = w.val
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	out := make([]Entry, len(keys))
	for i, k := range keys {
		out[i] = Entry{Key: []byte(k), Value: copyVal(merged[k])}
	}
	return out, nil
}

// Txn runs fn optimistically and commits its buffer, retrying the whole
// body on conflict (so fn must be safe to re-execute) up to
// Config.MaxAttempts. A non-nil error from fn aborts without committing
// and is returned as-is. Reads during fn are individually committed values
// but are only guaranteed mutually consistent once commit validation
// passes — the standard OCC contract.
func (cl *Client) Txn(fn func(tx *Txn) error) error {
	for attempt := 0; attempt < cl.c.cfg.MaxAttempts; attempt++ {
		t := &Txn{cl: cl, reads: map[string]readRec{}, writes: map[string]writeRec{}}
		if err := fn(t); err != nil {
			return err
		}
		committed, err := cl.commit(t)
		if err != nil {
			return err
		}
		if committed {
			return nil
		}
		cl.backoff(attempt)
	}
	return ErrContention
}

// txnKey is one key of a transaction's footprint with its recorded read
// and/or buffered write.
type txnKey struct {
	key   []byte
	read  *readRec
	write *writeRec
}

// footprint groups the transaction's keys by owning System, each group
// sorted by key — with ascending System ids this is the deterministic
// global acquisition order.
func (cl *Client) footprint(t *Txn) (map[int][]txnKey, []int) {
	merged := map[string]txnKey{}
	for k, r := range t.reads {
		rr := r
		merged[k] = txnKey{key: []byte(k), read: &rr}
	}
	for k, w := range t.writes {
		ww := w
		tk := merged[k]
		tk.key = []byte(k)
		tk.write = &ww
		merged[k] = tk
	}
	byNode := map[int][]txnKey{}
	for _, tk := range merged {
		n := cl.c.router.SystemFor(tk.key)
		byNode[n] = append(byNode[n], tk)
	}
	participants := make([]int, 0, len(byNode))
	for n := range byNode {
		sort.Slice(byNode[n], func(i, j int) bool {
			return bytes.Compare(byNode[n][i].key, byNode[n][j].key) < 0
		})
		participants = append(participants, n)
	}
	sort.Ints(participants)
	return byNode, participants
}

// commit validates and applies t's buffer. It returns committed=false (and
// a nil error) when a conflict requires the caller to retry the body.
func (cl *Client) commit(t *Txn) (bool, error) {
	cl.lastRev = 0
	byNode, participants := cl.footprint(t)
	// Phantom protection outside the footprint: hash routing interleaves a
	// scanned range over every System, but the commit path only validates
	// participant Systems. Check the rest read-only first. On a
	// single-System cluster every range is re-checked inside the commit's
	// own engine transaction, making the protection airtight; with several
	// Systems the window between this check and the applies remains
	// (DESIGN.md §13).
	if len(t.scans) > 0 {
		inFoot := make(map[int]bool, len(participants))
		for _, id := range participants {
			inFoot[id] = true
		}
		for _, n := range cl.c.nodes {
			if inFoot[n.id] {
				continue
			}
			node := n
			err := cl.threads[n.id].Atomic(func(tx rhtm.Tx) error {
				if !scansValid(tx, node, t) {
					return errPhantom
				}
				return nil
			})
			if err == errPhantom {
				cl.c.phantomConflicts.Add(1)
				return false, nil
			}
			if err != nil {
				return false, err
			}
		}
	}
	switch len(participants) {
	case 0:
		return true, nil // empty (or scan-only, validated above) transaction
	case 1:
		return cl.commitLocal(participants[0], byNode[participants[0]], t)
	default:
		return cl.commitCross(byNode, participants, t)
	}
}

// commitLocal validates and applies a single-System footprint as one engine
// transaction. No intents are needed: the engine's own conflict detection
// makes validate+apply atomic against every other transaction on that
// System, and the intent check keeps it correct against in-flight 2PC —
// written keys must wait for any pending intent (pinned readers included),
// read-only keys only for write intents.
func (cl *Client) commitLocal(nodeID int, keys []txnKey, t *Txn) (bool, error) {
	n := cl.c.nodes[nodeID]
	var recs []wal.Op
	var maxRev uint64
	err := cl.threads[nodeID].Atomic(func(tx rhtm.Tx) error {
		recs = recs[:0] // the body re-executes on engine aborts
		maxRev = 0
		if len(t.scans) > 0 && !scansValid(tx, n, t) {
			return errPhantom
		}
		for i := range keys {
			k := &keys[i]
			if k.write != nil {
				if n.st.AnyIntentOn(tx, k.key) {
					return errConflict
				}
			} else if _, held := n.st.WriteIntentOn(tx, k.key); held {
				return errConflict
			}
			if k.read != nil && !validRead(tx, n, k) {
				return errConflict
			}
		}
		for i := range keys {
			k := &keys[i]
			if k.write == nil {
				continue
			}
			if k.write.del {
				if rev, ok := n.st.DeleteStamped(tx, k.key); ok {
					if rev > maxRev {
						maxRev = rev
					}
					if cl.c.wal != nil {
						recs = append(recs, wal.Op{Kind: wal.OpDelete, Key: k.key, Rev: rev})
					}
				}
			} else {
				rev, err := n.st.PutStamped(tx, k.key, k.write.val, k.write.lease)
				if err != nil {
					return err
				}
				if rev > maxRev {
					maxRev = rev
				}
				if cl.c.wal != nil {
					recs = append(recs, wal.Op{Kind: wal.OpPut, Key: k.key,
						Value: k.write.val, Rev: rev, Lease: k.write.lease})
				}
			}
		}
		return nil
	})
	switch err {
	case nil:
		cl.c.localTxns.Add(1)
		if maxRev > cl.lastRev {
			cl.lastRev = maxRev
		}
		if err := cl.logLocal(nodeID, recs); err != nil {
			return false, err
		}
		return true, nil
	case errConflict:
		cl.c.localConflicts.Add(1)
		return false, nil
	case errPhantom:
		cl.c.phantomConflicts.Add(1)
		return false, nil
	default:
		return false, err
	}
}

// commitCross runs two-phase commit over the participant Systems.
func (cl *Client) commitCross(byNode map[int][]txnKey, participants []int, t *Txn) (bool, error) {
	c := cl.c
	c.crossTxns.Add(1)
	txid := c.nextTxID.Add(1)

	// Phase 1: prepare each participant in ascending id order. One engine
	// transaction per participant validates its reads and installs its
	// intents, so a refused prepare leaves that System untouched.
	var prepared []int
	var conflict bool
	var hard error
	var prepStart time.Time
	if c.prepareHist != nil || cl.sink != nil {
		prepStart = time.Now()
	}
	for _, nodeID := range participants {
		err := cl.prepare(nodeID, txid, byNode[nodeID], t)
		if err == nil {
			prepared = append(prepared, nodeID)
			continue
		}
		if err == errConflict {
			c.prepareConflicts.Add(1)
			conflict = true
		} else if err == errPhantom {
			c.phantomConflicts.Add(1)
			conflict = true
		} else {
			hard = err
		}
		break
	}
	if c.prepareHist != nil || cl.sink != nil {
		d := time.Since(prepStart)
		c.prepareHist.Observe(uint64(d)) // nil instrument is a no-op
		if cl.sink != nil {
			cl.sink.Stage(obs.Stage2PCPrepare, d)
		}
	}

	// Decision: commit iff every participant prepared. The log append is
	// the commit point; phase 2 merely discharges it. With a WAL attached,
	// the decision (with its write set) is synced to the coordinator log
	// before any apply runs — the *durable* commit point — and the region
	// from decision to resolution mark holds the checkpoint drain lock.
	commit := !conflict && hard == nil
	keysOf := func(nodeID int) [][]byte {
		keys := make([][]byte, len(byNode[nodeID]))
		for i := range byNode[nodeID] {
			keys[i] = byNode[nodeID][i].key
		}
		return keys
	}
	var decisionOps []wal.Op
	if c.wal != nil && commit {
		decisionOps = crossDecisionOps(byNode, participants)
	}
	if c.wal != nil && commit && len(decisionOps) > 0 {
		c.walMu.RLock()
		defer c.walMu.RUnlock()
		var syncStart time.Time
		if cl.sink != nil {
			syncStart = time.Now()
		}
		err := c.wal.Coord.Commit(txid, wal.FlagCross, decisionOps)
		if cl.sink != nil {
			// The coordinator append blocks through its group-commit sync:
			// this duration is the durable-commit-point wait.
			cl.sink.Stage(obs.StageWALSync, time.Since(syncStart))
		}
		if err != nil {
			if errors.Is(err, wal.ErrFenced) {
				// The durable commit point was refused by an epoch fence:
				// the transaction aborted by omission, exactly as a crash
				// here would decide it. Abort it in memory too — releasing
				// the prepared intents keeps the deposed primary internally
				// consistent instead of wedging its remaining clients.
				c.decide(txid, false, participants)
				for _, nodeID := range prepared {
					_ = cl.finish(nodeID, txid, keysOf(nodeID), false)
				}
				c.crossAborts.Add(1)
			}
			return false, err
		}
	}
	c.decide(txid, commit, participants)
	if !commit {
		for _, nodeID := range prepared {
			if err := cl.finish(nodeID, txid, keysOf(nodeID), false); err != nil && hard == nil {
				hard = err
			}
		}
		c.crossAborts.Add(1)
		return false, hard
	}
	var finStart time.Time
	if c.finishHist != nil || cl.sink != nil {
		finStart = time.Now()
	}
	for _, nodeID := range participants {
		if err := cl.finish(nodeID, txid, keysOf(nodeID), true); err != nil {
			if errors.Is(err, wal.ErrFenced) {
				// The decision is already durably logged — the transaction
				// IS committed; a failover resolves it forward from the
				// decision record. Keep discharging the remaining intents
				// (the fence only refused the redundant data-stream frame).
				continue
			}
			return false, err
		}
	}
	if c.finishHist != nil || cl.sink != nil {
		d := time.Since(finStart)
		c.finishHist.Observe(uint64(d)) // nil instrument is a no-op
		if cl.sink != nil {
			cl.sink.Stage(obs.Stage2PCFinish, d)
		}
	}
	if c.wal != nil && len(decisionOps) > 0 {
		if err := c.wal.Coord.Mark(txid, 0); err != nil && !errors.Is(err, wal.ErrFenced) {
			// A missing resolution mark only costs recovery a redundant
			// redo; a fenced mark is not a commit failure.
			return false, err
		}
	}
	c.crossCommits.Add(1)
	return true, nil
}

// crossDecisionOps serializes a cross transaction's write set for the
// coordinator decision log: one op per written key, Part naming the owning
// System, revision 0 (revisions are assigned at apply time). Read-only
// footprints yield nothing — there is nothing to recover forward.
func crossDecisionOps(byNode map[int][]txnKey, participants []int) []wal.Op {
	var ops []wal.Op
	for _, nodeID := range participants {
		for i := range byNode[nodeID] {
			k := &byNode[nodeID][i]
			if k.write == nil {
				continue
			}
			op := wal.Op{Part: nodeID, Key: k.key}
			if k.write.del {
				op.Kind = wal.OpDelete
			} else {
				op.Kind = wal.OpPut
				op.Value = k.write.val
				op.Lease = k.write.lease
			}
			ops = append(ops, op)
		}
	}
	return ops
}

// validRead re-checks one recorded read against committed state, by
// revision: present keys must still carry the observed revision, absent
// keys must still be absent.
func validRead(tx rhtm.Tx, n *Node, k *txnKey) bool {
	rev, ok := n.st.RevOf(tx, k.key)
	return ok == k.read.ok && (!ok || rev == k.read.rev)
}

// scansValid re-checks every recorded scan range against System n's
// committed state: a committed key inside a range but outside the read set
// entered after the scan (a phantom), and a pending write intent inside a
// range is a phantom in waiting — both refuse the commit. Keys that ARE in
// the read set are validated by revision like any other read, so range
// validation plus read validation together pin the exact scanned contents.
// Must run before this transaction installs its own intents on n (it would
// mistake them for a concurrent writer's).
func scansValid(tx rhtm.Tx, n *Node, t *Txn) bool {
	for _, r := range t.scans {
		clean := true
		n.st.ScanLimitRev(tx, r.start, r.end, 0, func(k, v []byte, rev uint64) bool {
			if _, seen := t.reads[string(k)]; !seen {
				clean = false
				return false
			}
			return true
		})
		if !clean || n.st.HasWriteIntentInRange(tx, r.start, r.end) {
			return false
		}
	}
	return true
}

// prepare runs the phase-1 transaction on one participant. The scan-range
// check runs first, before any of this transaction's own intents land.
func (cl *Client) prepare(nodeID int, txid uint64, keys []txnKey, t *Txn) error {
	n := cl.c.nodes[nodeID]
	return cl.threads[nodeID].Atomic(func(tx rhtm.Tx) error {
		if len(t.scans) > 0 && !scansValid(tx, n, t) {
			return errPhantom
		}
		for i := range keys {
			k := &keys[i]
			if k.read != nil && !validRead(tx, n, k) {
				return errConflict
			}
			kind, val, lease := store.IntentRead, []byte(nil), uint64(0)
			if k.write != nil {
				if k.write.del {
					kind = store.IntentDelete
				} else {
					kind, val, lease = store.IntentPut, k.write.val, k.write.lease
				}
			}
			if err := n.st.PrepareIntent(tx, k.key, txid, kind, val, lease); err != nil {
				if err == store.ErrIntentHeld {
					return errConflict
				}
				return err
			}
		}
		return nil
	})
}

// finish runs the phase-2 transaction on one participant: apply on commit,
// discard on abort. Failures here are protocol bugs (the intents must
// exist and be ours), surfaced as hard errors. With a WAL attached, the
// applies are logged to the participant's stream under the cluster
// transaction id (recovery's applied-detection keys on it) and forced
// durable before the coordinator marks the transaction resolved.
func (cl *Client) finish(nodeID int, txid uint64, keys [][]byte, commit bool) error {
	n := cl.c.nodes[nodeID]
	var recs []wal.Op
	var maxRev uint64
	err := cl.threads[nodeID].Atomic(func(tx rhtm.Tx) error {
		recs = recs[:0] // the body re-executes on engine aborts
		maxRev = 0
		for _, key := range keys {
			if !commit {
				if err := n.st.DiscardIntent(tx, key, txid); err != nil {
					return err
				}
				continue
			}
			ap, err := n.st.ApplyIntent(tx, key, txid)
			if err != nil {
				return err
			}
			if ap.Rev > maxRev {
				maxRev = ap.Rev
			}
			if cl.c.wal == nil || ap.Rev == 0 {
				continue // read intent, or a delete of an absent key
			}
			op := wal.Op{Key: copyVal(key), Rev: ap.Rev}
			if ap.Kind == store.IntentPut {
				op.Kind = wal.OpPut
				op.Value = copyVal(ap.Value)
				op.Lease = ap.Lease
			} else {
				op.Kind = wal.OpDelete
			}
			recs = append(recs, op)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if maxRev > cl.lastRev {
		cl.lastRev = maxRev
	}
	return cl.logApply(nodeID, txid, recs)
}

// --- convenience multi-key operations ---

// ReadMulti returns an atomic snapshot of the given keys (nil marks an
// absent key). Spanning Systems, the snapshot is guaranteed by read
// validation under 2PC; on one System it is one engine transaction.
func (cl *Client) ReadMulti(keys [][]byte) ([][]byte, error) {
	var out [][]byte
	err := cl.Txn(func(t *Txn) error {
		out = make([][]byte, len(keys))
		for i, k := range keys {
			v, ok, err := t.Get(k)
			if err != nil {
				return err
			}
			if ok {
				out[i] = v
			} else {
				out[i] = nil
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Update atomically transforms the given keys: fn receives their current
// values (nil for absent) and returns the new ones — nil deletes, non-nil
// stores. Returning a nil slice makes the transaction read-only; a non-nil
// error from fn aborts it unchanged and is returned as-is.
func (cl *Client) Update(keys [][]byte, fn func(vals [][]byte) ([][]byte, error)) error {
	return cl.Txn(func(t *Txn) error {
		vals := make([][]byte, len(keys))
		for i, k := range keys {
			v, ok, err := t.Get(k)
			if err != nil {
				return err
			}
			if ok {
				vals[i] = v
			}
		}
		newVals, err := fn(vals)
		if err != nil {
			return err
		}
		if newVals == nil {
			return nil
		}
		for i, k := range keys {
			if newVals[i] == nil {
				if vals[i] != nil {
					t.Delete(k)
				}
			} else {
				t.Put(k, newVals[i])
			}
		}
		return nil
	})
}
