package cluster

import (
	"bytes"
	"errors"
	"sort"
	"time"

	"rhtm"
	"rhtm/obs"
	"rhtm/store"
	"rhtm/wal"
)

// Batched operations: a Batch groups independent single-key operations into
// one atomic transaction, amortizing per-transaction overhead (the
// ROADMAP's store-level batching item, lifted to the cluster). The batch
// splits into per-System local groups: when one System owns every key, the
// whole batch is a single engine transaction there; when several do, each
// participant prepares its entire group in one engine transaction —
// executing the group's reads and installing one intent per key — and a
// single 2PC decision commits them all. Either way a batch of k operations
// costs O(participants) transactions instead of k.

// BatchOpKind selects what one batch operation does.
type BatchOpKind uint8

const (
	// BatchGet reads Key into the BatchResult.
	BatchGet BatchOpKind = iota
	// BatchPut stores Key→Value.
	BatchPut
	// BatchDelete removes Key; BatchResult.Found reports prior presence.
	BatchDelete
)

// BatchOp is one operation of a batch.
type BatchOp struct {
	Kind  BatchOpKind
	Key   []byte
	Value []byte // BatchPut only
}

// BatchResult is the outcome of one batch operation. For BatchGet, Value
// and Found report the read; for BatchDelete, Found reports whether the key
// existed. Operations observe each other in batch order: a Get after a Put
// of the same key sees the Put.
type BatchResult struct {
	Value []byte
	Found bool
}

// batchKey is one distinct key of a batch on one participant, with the
// batch-order indices of the operations touching it.
type batchKey struct {
	key []byte
	ops []int
}

// Batch executes ops as one atomic transaction and returns per-op results,
// retrying conflicts up to Config.MaxAttempts.
func (cl *Client) Batch(ops []BatchOp) ([]BatchResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	cl.lastRev = 0
	results := make([]BatchResult, len(ops))

	// Group op indices by owning System, then by distinct key within each
	// (ascending — the deterministic intent acquisition order), preserving
	// batch order within a key.
	byNode := map[int][]batchKey{}
	pos := map[string]struct{ node, idx int }{}
	for i, op := range ops {
		k := string(op.Key)
		if p, seen := pos[k]; seen {
			byNode[p.node][p.idx].ops = append(byNode[p.node][p.idx].ops, i)
			continue
		}
		nodeID := cl.c.router.SystemFor(op.Key)
		pos[k] = struct{ node, idx int }{nodeID, len(byNode[nodeID])}
		byNode[nodeID] = append(byNode[nodeID], batchKey{key: op.Key, ops: []int{i}})
	}
	participants := make([]int, 0, len(byNode))
	for nodeID := range byNode {
		sort.Slice(byNode[nodeID], func(i, j int) bool {
			return bytes.Compare(byNode[nodeID][i].key, byNode[nodeID][j].key) < 0
		})
		participants = append(participants, nodeID)
	}
	sort.Ints(participants)

	if len(participants) == 1 {
		return results, cl.batchLocal(participants[0], byNode[participants[0]], ops, results)
	}
	return results, cl.batchCross(byNode, participants, ops, results)
}

// batchLocal runs a single-System batch as one engine transaction: all the
// atomicity comes from the engine, exactly like commitLocal.
func (cl *Client) batchLocal(nodeID int, keys []batchKey, ops []BatchOp, results []BatchResult) error {
	n := cl.c.nodes[nodeID]
	var recs []wal.Op
	var maxRev uint64
	err := cl.localRetry(func() error {
		return cl.threads[nodeID].Atomic(func(tx rhtm.Tx) error {
			recs = recs[:0] // the body re-executes on engine aborts
			maxRev = 0
			for i := range keys {
				written := false
				for _, op := range keys[i].ops {
					if ops[op].Kind != BatchGet {
						written = true
						break
					}
				}
				if written {
					if n.st.AnyIntentOn(tx, keys[i].key) {
						return errConflict
					}
				} else if _, held := n.st.WriteIntentOn(tx, keys[i].key); held {
					return errConflict
				}
			}
			for _, op := range opsInOrder(keys) {
				switch ops[op].Kind {
				case BatchGet:
					v, ok := n.st.Get(tx, ops[op].Key)
					results[op] = BatchResult{Value: v, Found: ok}
				case BatchPut:
					rev, err := n.st.PutStamped(tx, ops[op].Key, ops[op].Value, 0)
					if err != nil {
						return err
					}
					if rev > maxRev {
						maxRev = rev
					}
					if cl.c.wal != nil {
						recs = append(recs, wal.Op{Kind: wal.OpPut,
							Key: ops[op].Key, Value: ops[op].Value, Rev: rev})
					}
					results[op] = BatchResult{}
				default:
					rev, found := n.st.DeleteStamped(tx, ops[op].Key)
					if found {
						if rev > maxRev {
							maxRev = rev
						}
						if cl.c.wal != nil {
							recs = append(recs, wal.Op{Kind: wal.OpDelete, Key: ops[op].Key, Rev: rev})
						}
					}
					results[op] = BatchResult{Found: found}
				}
			}
			return nil
		})
	})
	if err == nil {
		cl.c.localTxns.Add(1)
		if maxRev > cl.lastRev {
			cl.lastRev = maxRev
		}
		return cl.logLocal(nodeID, recs)
	}
	return err
}

// opsInOrder flattens a participant's key groups back into batch order, so
// the local path executes operations exactly as submitted.
func opsInOrder(keys []batchKey) []int {
	var out []int
	for i := range keys {
		out = append(out, keys[i].ops...)
	}
	sort.Ints(out)
	return out
}

// batchCross runs a multi-System batch under 2PC. Each participant's
// prepare transaction executes the group's reads and installs one intent
// per key carrying the key's net effect; reads need no later validation
// because the intent pins the key from prepare to decision.
func (cl *Client) batchCross(byNode map[int][]batchKey, participants []int, ops []BatchOp, results []BatchResult) error {
	c := cl.c
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		c.crossTxns.Add(1)
		txid := c.nextTxID.Add(1)

		var prepared []int
		var conflict bool
		var hard error
		var prepStart time.Time
		if c.prepareHist != nil || cl.sink != nil {
			prepStart = time.Now()
		}
		for _, nodeID := range participants {
			err := cl.prepareBatch(nodeID, txid, byNode[nodeID], ops, results)
			if err == nil {
				prepared = append(prepared, nodeID)
				continue
			}
			if err == errConflict {
				c.prepareConflicts.Add(1)
				conflict = true
			} else {
				hard = err
			}
			break
		}
		if c.prepareHist != nil || cl.sink != nil {
			d := time.Since(prepStart)
			c.prepareHist.Observe(uint64(d)) // nil instrument is a no-op
			if cl.sink != nil {
				cl.sink.Stage(obs.Stage2PCPrepare, d)
			}
		}

		commit := !conflict && hard == nil
		keysOf := func(nodeID int) [][]byte {
			keys := make([][]byte, len(byNode[nodeID]))
			for i := range byNode[nodeID] {
				keys[i] = byNode[nodeID][i].key
			}
			return keys
		}
		var decisionOps []wal.Op
		if c.wal != nil && commit {
			decisionOps = batchDecisionOps(byNode, participants, ops)
		}
		unlockDrain := func() {}
		if c.wal != nil && commit && len(decisionOps) > 0 {
			// Durable commit point, under the checkpoint drain lock until
			// the resolution mark (see commitCross).
			c.walMu.RLock()
			unlockDrain = c.walMu.RUnlock
			var syncStart time.Time
			if cl.sink != nil {
				syncStart = time.Now()
			}
			err := c.wal.Coord.Commit(txid, wal.FlagCross, decisionOps)
			if cl.sink != nil {
				// Durable-commit-point wait, as in commitCross.
				cl.sink.Stage(obs.StageWALSync, time.Since(syncStart))
			}
			if err != nil {
				unlockDrain()
				if errors.Is(err, wal.ErrFenced) {
					// Aborted by omission under an epoch fence: release the
					// prepared intents so the deposed primary's memory stays
					// consistent (see commitCross).
					c.decide(txid, false, participants)
					for _, nodeID := range prepared {
						_ = cl.finish(nodeID, txid, keysOf(nodeID), false)
					}
					c.crossAborts.Add(1)
				}
				return err
			}
		}
		c.decide(txid, commit, participants)
		if !commit {
			unlockDrain()
			for _, nodeID := range prepared {
				if err := cl.finish(nodeID, txid, keysOf(nodeID), false); err != nil && hard == nil {
					hard = err
				}
			}
			c.crossAborts.Add(1)
			if hard != nil {
				return hard
			}
			cl.backoff(attempt)
			continue
		}
		var finStart time.Time
		if c.finishHist != nil || cl.sink != nil {
			finStart = time.Now()
		}
		for _, nodeID := range participants {
			if err := cl.finish(nodeID, txid, keysOf(nodeID), true); err != nil {
				if errors.Is(err, wal.ErrFenced) {
					// Durably decided: committed regardless; keep
					// discharging intents (see commitCross).
					continue
				}
				unlockDrain()
				return err
			}
		}
		if c.finishHist != nil || cl.sink != nil {
			d := time.Since(finStart)
			c.finishHist.Observe(uint64(d)) // nil instrument is a no-op
			if cl.sink != nil {
				cl.sink.Stage(obs.Stage2PCFinish, d)
			}
		}
		if c.wal != nil && len(decisionOps) > 0 {
			if err := c.wal.Coord.Mark(txid, 0); err != nil && !errors.Is(err, wal.ErrFenced) {
				unlockDrain()
				return err
			}
		}
		unlockDrain()
		c.crossCommits.Add(1)
		return nil
	}
	return ErrContention
}

// batchDecisionOps serializes a cross batch's write set for the decision
// log: each written key's net effect is its last non-Get operation in
// batch order (independent of the committed state the prepare observed).
func batchDecisionOps(byNode map[int][]batchKey, participants []int, ops []BatchOp) []wal.Op {
	var out []wal.Op
	for _, nodeID := range participants {
		for i := range byNode[nodeID] {
			bk := &byNode[nodeID][i]
			last := -1
			for _, op := range bk.ops {
				if ops[op].Kind != BatchGet {
					last = op
				}
			}
			if last < 0 {
				continue // read-only key: nothing to recover forward
			}
			op := wal.Op{Part: nodeID, Key: bk.key}
			if ops[last].Kind == BatchPut {
				op.Kind = wal.OpPut
				op.Value = ops[last].Value
			} else {
				op.Kind = wal.OpDelete
			}
			out = append(out, op)
		}
	}
	return out
}

// prepareBatch is the phase-1 transaction of a cross-System batch on one
// participant: for every distinct key it reads the committed value, plays
// the key's operations in batch order against an overlay (filling Get and
// Delete results), and installs one intent recording the net effect —
// IntentPut/IntentDelete when the key was written, IntentRead to pin a key
// the batch only read.
func (cl *Client) prepareBatch(nodeID int, txid uint64, keys []batchKey, ops []BatchOp, results []BatchResult) error {
	n := cl.c.nodes[nodeID]
	return cl.threads[nodeID].Atomic(func(tx rhtm.Tx) error {
		for i := range keys {
			bk := &keys[i]
			val, ok := n.st.Get(tx, bk.key)
			written := false
			for _, op := range bk.ops {
				switch ops[op].Kind {
				case BatchGet:
					if ok {
						results[op] = BatchResult{Value: copyVal(val), Found: true}
					} else {
						results[op] = BatchResult{}
					}
				case BatchPut:
					val, ok = ops[op].Value, true
					written = true
					results[op] = BatchResult{}
				default:
					results[op] = BatchResult{Found: ok}
					val, ok = nil, false
					written = true
				}
			}
			kind, ival := store.IntentRead, []byte(nil)
			if written {
				if ok {
					kind, ival = store.IntentPut, val
				} else {
					kind = store.IntentDelete
				}
			}
			if err := n.st.PrepareIntent(tx, bk.key, txid, kind, ival, 0); err != nil {
				if err == store.ErrIntentHeld {
					return errConflict
				}
				return err
			}
		}
		return nil
	})
}
