// Package cluster scales the transactional store past one simulated
// machine: a Cluster owns N fully independent rhtm.Systems — each with its
// own word memory, TM metadata, global clock, engine, and store.Store — and
// a Router hash-partitions the key space across them. Nothing is shared
// between Systems: no clock, no stripe array, no conflict detection. That
// is exactly the share-nothing setting the paper's protocols cannot cover
// (RH1/RH2 scale hybrid transactions *within* one coherence domain), so
// atomicity across Systems needs an explicit commit protocol.
//
// Transactions touching a single System run as one local engine
// transaction. Transactions spanning Systems run two-phase commit:
//
//   - Phase 1 visits each participant System in ascending id order (keys
//     in ascending byte order within each) and runs one prepare
//     transaction there: every read is re-validated against the value the
//     transaction observed, and every touched key gets an exclusive intent
//     record installed in that System's simulated memory (store.Store's
//     intent API). A pending intent by another transaction, or a failed
//     validation, aborts the prepare — all-or-nothing per participant,
//     because it is one engine transaction.
//   - The coordinator then appends its decision (commit iff every
//     participant prepared) to the cluster's decision log — the commit
//     point.
//   - Phase 2 runs one transaction per participant applying (or, on
//     abort, discarding) the intents.
//
// Conforming accessors never read past a pending intent (they wait or
// conflict), so no observer sees a cross-System transaction half-applied:
// between the decision and the last phase-2 apply, every undecided key is
// unreadable rather than stale. Deterministic acquisition order plus
// abort-on-conflict (prepares never block while holding intents) makes the
// protocol deadlock-free; retries use randomized backoff.
//
// See DESIGN.md §6 for what this simulation does and does not model about
// a real cluster (no failures, no network, a host-memory decision log).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"rhtm"
	"rhtm/containers"
	"rhtm/obs"
	"rhtm/store"
)

// ErrContention is returned by client operations that exhausted
// Config.MaxAttempts without committing.
var ErrContention = errors.New("cluster: transaction exceeded MaxAttempts (contention)")

// Config sizes a Cluster.
type Config struct {
	// Systems is the number of independent simulated machines (default 1).
	Systems int
	// DataWords is the per-System simulated heap size (default: ArenaWords
	// plus metadata slack).
	DataWords int
	// ArenaWords is each System's store arena capacity (default
	// store.DefaultArenaWords). Size it for records plus in-flight intents
	// (store.RecordFootprintWords / store.IntentFootprintWords).
	ArenaWords int
	// LogWords sizes each System's commit-event ring (default
	// store.DefaultLogWords) — the bounded log kv.Watch streams from.
	LogWords int
	// MaxThreads bounds clients per System engine (default 64; one engine
	// thread per System is created for every NewClient call).
	MaxThreads int
	// NewEngine builds each System's engine (default: RH1 with the paper's
	// Mixed 100 configuration).
	NewEngine func(s *rhtm.System) (rhtm.Engine, error)
	// MaxAttempts bounds commit retries and intent waits per operation
	// before ErrContention (default 10000).
	MaxAttempts int
}

// Node is one member System of a Cluster.
type Node struct {
	id  int
	sys *rhtm.System
	eng rhtm.Engine
	st  *store.Store
}

// ID returns the node's position in the cluster (0-based).
func (n *Node) ID() int { return n.id }

// System returns the node's simulated machine.
func (n *Node) System() *rhtm.System { return n.sys }

// Engine returns the node's transactional-memory engine.
func (n *Node) Engine() rhtm.Engine { return n.eng }

// Store returns the node's key-value store.
func (n *Node) Store() *store.Store { return n.st }

// Router assigns keys to Systems by the same stable fnv1a hash the store's
// shard layer uses. Routing is a pure function of the key bytes: no
// simulated accesses, identical placement across runs and processes.
type Router struct {
	systems int
}

// SystemFor returns the id of the System owning key.
func (r Router) SystemFor(key []byte) int {
	return int(store.KeyHash(key) % uint64(r.systems))
}

// Systems returns the number of Systems routed over.
func (r Router) Systems() int { return r.systems }

// Decision is one coordinator commit/abort record. The log orders
// decisions; a conformance checker can replay it against observed state to
// prove atomicity (every transaction's effects appear on all participants
// or none). Commit records are always retained — they are the atomicity
// evidence; an absent txid means abort. Abort records are kept only up to
// maxAbortDecisions (long contended runs can abort millions of attempts),
// beyond which they are counted in Stats.CrossAborts but not retained.
type Decision struct {
	// TxID is the cluster-unique transaction id.
	TxID uint64
	// Commit reports the coordinator's verdict.
	Commit bool
	// Participants lists the involved node ids, ascending — the prepare
	// (and phase 2) visit order.
	Participants []int
}

// Cluster is the share-nothing multi-System store.
type Cluster struct {
	cfg    Config
	router Router
	nodes  []*Node

	nextTxID  atomic.Uint64
	clientSeq atomic.Int64

	decMu        sync.Mutex
	decisions    []Decision
	abortsLogged int

	// wal, when attached, holds the durability streams; walMu is the
	// checkpoint drain: cross-System commits hold it in read mode from
	// decision to resolution mark, CheckpointWAL in write mode (see
	// wal.go).
	wal   *WALSet
	walMu sync.RWMutex

	// Protocol counters (host-side; simulated costs are in engine stats).
	localTxns        atomic.Uint64 // single-System transactions committed
	localConflicts   atomic.Uint64 // single-System attempts retried
	crossTxns        atomic.Uint64 // 2PC attempts started
	crossCommits     atomic.Uint64 // 2PC decisions: commit
	crossAborts      atomic.Uint64 // 2PC decisions: abort (prepare conflict)
	intentWaits      atomic.Uint64 // reads retried against a pending intent
	prepareConflicts atomic.Uint64 // individual prepare transactions refused
	snapshotScans    atomic.Uint64 // validated snapshot scans returned
	scanRetries      atomic.Uint64 // scan passes torn by a concurrent commit
	phantomConflicts atomic.Uint64 // commits refused by scan-range revalidation

	// Optional 2PC phase histograms (SetMetrics): wall nanoseconds of the
	// prepare sweep and the phase-2 apply sweep of each cross-System
	// commit. nil instruments are no-ops.
	prepareHist *obs.Histogram
	finishHist  *obs.Histogram
}

// New builds a cluster of cfg.Systems independent machines. Call during
// single-threaded setup.
func New(cfg Config) (*Cluster, error) {
	if cfg.Systems <= 0 {
		cfg.Systems = 1
	}
	if cfg.ArenaWords <= 0 {
		cfg.ArenaWords = store.DefaultArenaWords
	}
	if cfg.LogWords <= 0 {
		cfg.LogWords = store.DefaultLogWords
	}
	if cfg.DataWords <= 0 {
		cfg.DataWords = cfg.ArenaWords + cfg.LogWords + 1<<13
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 10_000
	}
	if cfg.NewEngine == nil {
		cfg.NewEngine = func(s *rhtm.System) (rhtm.Engine, error) {
			return rhtm.NewRH1(s, rhtm.DefaultRH1Options()), nil
		}
	}
	c := &Cluster{cfg: cfg, router: Router{systems: cfg.Systems}}
	for i := 0; i < cfg.Systems; i++ {
		scfg := rhtm.DefaultConfig(cfg.DataWords)
		if cfg.MaxThreads > 0 {
			scfg.MaxThreads = cfg.MaxThreads
		}
		sys, err := rhtm.NewSystem(scfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: system %d: %w", i, err)
		}
		eng, err := cfg.NewEngine(sys)
		if err != nil {
			return nil, fmt.Errorf("cluster: engine %d: %w", i, err)
		}
		c.nodes = append(c.nodes, &Node{
			id:  i,
			sys: sys,
			eng: eng,
			st:  store.New(sys, store.Options{ArenaWords: cfg.ArenaWords, LogWords: cfg.LogWords}),
		})
	}
	return c, nil
}

// MustNew is New for setup code.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// NumSystems returns the cluster size.
func (c *Cluster) NumSystems() int { return len(c.nodes) }

// Node returns the i-th member System.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Router returns the key→System placement function.
func (c *Cluster) Router() Router { return c.router }

// Load stores key→value directly in the owning System, bypassing the
// transaction machinery. Single-threaded setup only.
func (c *Cluster) Load(key, value []byte) error {
	n := c.nodes[c.router.SystemFor(key)]
	return n.st.Put(containers.SetupTx(n.sys), key, value)
}

// Peek reads key's committed value with raw memory access. Only call while
// no transactions are in flight (verification).
func (c *Cluster) Peek(key []byte) ([]byte, bool) {
	n := c.nodes[c.router.SystemFor(key)]
	return n.st.Get(containers.SetupTx(n.sys), key)
}

// Len returns the number of live keys across all Systems. Quiescent
// verification only.
func (c *Cluster) Len() int {
	total := 0
	for _, n := range c.nodes {
		total += n.st.Len(containers.SetupTx(n.sys))
	}
	return total
}

// Decisions returns a copy of the coordinator decision log, in decision
// order.
func (c *Cluster) Decisions() []Decision {
	c.decMu.Lock()
	defer c.decMu.Unlock()
	out := make([]Decision, len(c.decisions))
	copy(out, c.decisions)
	return out
}

// maxAbortDecisions bounds retained abort records; see Decision.
const maxAbortDecisions = 4096

// decide appends the coordinator's verdict for txid. Appending commit=true
// is the transaction's commit point: intents become obligations that phase
// 2 discharges.
func (c *Cluster) decide(txid uint64, commit bool, participants []int) {
	p := make([]int, len(participants))
	copy(p, participants)
	c.decMu.Lock()
	if commit || c.abortsLogged < maxAbortDecisions {
		if !commit {
			c.abortsLogged++
		}
		c.decisions = append(c.decisions, Decision{TxID: txid, Commit: commit, Participants: p})
	}
	c.decMu.Unlock()
}

// Validate checks every System's store invariants and that no intent is
// left pending — after a quiescent point every decided transaction must
// have discharged its intents. It also cross-checks the decision log:
// transaction ids are unique and participants are sorted.
func (c *Cluster) Validate() error {
	for _, n := range c.nodes {
		if err := n.st.Validate(); err != nil {
			return fmt.Errorf("cluster: system %d: %w", n.id, err)
		}
		if p := n.st.PendingIntents(containers.SetupTx(n.sys)); p != 0 {
			return fmt.Errorf("cluster: system %d has %d orphaned intents", n.id, p)
		}
	}
	seen := map[uint64]bool{}
	for _, d := range c.Decisions() {
		if seen[d.TxID] {
			return fmt.Errorf("cluster: duplicate decision for txn %d", d.TxID)
		}
		seen[d.TxID] = true
		for i := 1; i < len(d.Participants); i++ {
			if d.Participants[i-1] >= d.Participants[i] {
				return fmt.Errorf("cluster: txn %d participants not ascending: %v",
					d.TxID, d.Participants)
			}
		}
	}
	return nil
}

// SetMetrics attaches the 2PC phase-timing histograms: prepare receives
// each cross commit's phase-1 sweep duration in nanoseconds, finish the
// phase-2 apply sweep. Either may be nil. Call before clients run.
func (c *Cluster) SetMetrics(prepare, finish *obs.Histogram) {
	c.prepareHist = prepare
	c.finishHist = finish
}

// Counters is the live (atomically readable) subset of Stats: the
// host-side protocol counters. Unlike Stats — which merges quiescent-only
// engine snapshots and store counters — Counters is safe to call while
// clients are running.
type Counters struct {
	LocalTxns, LocalConflicts                                           uint64
	CrossTxns, CrossCommits, CrossAborts, PrepareConflicts, IntentWaits uint64
	SnapshotScans, ScanRetries, PhantomConflicts                        uint64
}

// Counters snapshots the protocol counters without quiescence.
func (c *Cluster) Counters() Counters {
	return Counters{
		LocalTxns:        c.localTxns.Load(),
		LocalConflicts:   c.localConflicts.Load(),
		CrossTxns:        c.crossTxns.Load(),
		CrossCommits:     c.crossCommits.Load(),
		CrossAborts:      c.crossAborts.Load(),
		PrepareConflicts: c.prepareConflicts.Load(),
		IntentWaits:      c.intentWaits.Load(),
		SnapshotScans:    c.snapshotScans.Load(),
		ScanRetries:      c.scanRetries.Load(),
		PhantomConflicts: c.phantomConflicts.Load(),
	}
}

// Stats aggregates engine activity and protocol counters across the
// cluster.
type Stats struct {
	// Engines merges every System's engine statistics.
	Engines rhtm.Stats
	// PerSystemAccesses is each System's simulated shared-access count
	// (data + metadata). Systems run in parallel, so the maximum is the
	// simulated critical path of a run.
	PerSystemAccesses []uint64
	// Store sums every System's store counters.
	Store store.Stats

	// LocalTxns / LocalConflicts count single-System transactions
	// committed / retried.
	LocalTxns, LocalConflicts uint64
	// CrossTxns counts 2PC attempts; CrossCommits/CrossAborts the
	// decisions; PrepareConflicts individual refused prepares;
	// IntentWaits reads retried against a pending intent.
	CrossTxns, CrossCommits, CrossAborts, PrepareConflicts, IntentWaits uint64
	// SnapshotScans counts validated snapshot scans returned; ScanRetries
	// counts scan attempts torn by a concurrent commit and re-run;
	// PhantomConflicts counts commits refused because a key entered a range
	// the transaction had scanned.
	SnapshotScans, ScanRetries, PhantomConflicts uint64
}

// Stats snapshots the cluster. Only call while no clients are inside an
// operation.
func (c *Cluster) Stats() Stats {
	out := Stats{
		LocalTxns:         c.localTxns.Load(),
		LocalConflicts:    c.localConflicts.Load(),
		CrossTxns:         c.crossTxns.Load(),
		CrossCommits:      c.crossCommits.Load(),
		CrossAborts:       c.crossAborts.Load(),
		PrepareConflicts:  c.prepareConflicts.Load(),
		IntentWaits:       c.intentWaits.Load(),
		SnapshotScans:     c.snapshotScans.Load(),
		ScanRetries:       c.scanRetries.Load(),
		PhantomConflicts:  c.phantomConflicts.Load(),
		PerSystemAccesses: make([]uint64, len(c.nodes)),
	}
	for i, n := range c.nodes {
		es := n.eng.Snapshot()
		out.Engines.Add(es)
		out.PerSystemAccesses[i] = es.Reads + es.Writes + es.MetadataReads + es.MetadataWrites
		out.Store.Add(n.st.Stats(containers.SetupTx(n.sys)))
	}
	return out
}
