package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rhtm"
	"rhtm/containers"
	"rhtm/store"
)

// smallConfig builds a test cluster: small Systems, RH1 by default.
func smallConfig(systems int) Config {
	return Config{
		Systems:    systems,
		DataWords:  1 << 15,
		ArenaWords: 1 << 13,
	}
}

// --- routing (satellite: property test) ---

// TestKeyHashGolden pins the routing hash to the published FNV-1a 64-bit
// test vectors: the assignment must be stable across runs, processes, and
// refactors — a silent hash change would re-route every key.
func TestKeyHashGolden(t *testing.T) {
	golden := map[string]uint64{
		"":       0xcbf29ce484222325,
		"a":      0xaf63dc4c8601ec8c,
		"foobar": 0x85944171f73967e8,
	}
	for k, want := range golden {
		if got := store.KeyHash([]byte(k)); got != want {
			t.Errorf("KeyHash(%q) = %#x, want %#x", k, got, want)
		}
	}
	// Router and store shard assignment agree with the raw hash.
	r := Router{systems: 7}
	sh := store.NewSharded(rhtm.MustNewSystem(rhtm.DefaultConfig(1<<16)), 7, store.Options{ArenaWords: 1 << 10})
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("user%08d", i))
		want := int(store.KeyHash(key) % 7)
		if got := r.SystemFor(key); got != want {
			t.Fatalf("Router.SystemFor(%s) = %d, want %d", key, got, want)
		}
		if got := sh.ShardIndex(key); got != want {
			t.Fatalf("Sharded.ShardIndex(%s) = %d, want %d", key, got, want)
		}
	}
}

// TestRoutingBalanced: over 10k random keys no System (or shard) may hold
// more than twice the mean — fnv1a must spread realistic key shapes.
func TestRoutingBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := make([][]byte, 10_000)
	for i := range keys {
		switch i % 3 {
		case 0:
			keys[i] = []byte(fmt.Sprintf("user%08d", rng.Intn(1_000_000)))
		case 1:
			keys[i] = []byte(fmt.Sprintf("order:%d:%d", rng.Intn(1000), rng.Intn(1000)))
		default:
			b := make([]byte, rng.Intn(20)+1)
			rng.Read(b)
			keys[i] = b
		}
	}
	for _, systems := range []int{2, 4, 8} {
		r := Router{systems: systems}
		counts := make([]int, systems)
		for _, k := range keys {
			counts[r.SystemFor(k)]++
		}
		mean := len(keys) / systems
		for id, c := range counts {
			if c > 2*mean {
				t.Errorf("systems=%d: System %d holds %d keys, > 2x mean %d", systems, id, c, mean)
			}
			if c == 0 {
				t.Errorf("systems=%d: System %d holds no keys", systems, id)
			}
		}
	}
}

// --- 2PC mechanics ---

// crossPair returns two keys the router places on different Systems.
func crossPair(t *testing.T, c *Cluster) ([]byte, []byte) {
	t.Helper()
	a := []byte("home-0")
	for i := 0; ; i++ {
		b := []byte(fmt.Sprintf("away-%d", i))
		if c.Router().SystemFor(b) != c.Router().SystemFor(a) {
			return a, b
		}
	}
}

func TestLocalOpsLogNoDecisions(t *testing.T) {
	c := MustNew(smallConfig(2))
	cl := c.NewClient()
	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cl.Get([]byte("k"))
	if err != nil || !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if _, err := cl.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	// Single-System multi-key transactions stay local too.
	err = cl.Txn(func(tx *Txn) error {
		tx.Put([]byte("x"), []byte("1"))
		v, _, err := tx.Get([]byte("x"))
		if err != nil {
			return err
		}
		tx.Put([]byte("x"), append(v, '2'))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Decisions(); len(got) != 0 {
		t.Fatalf("local operations appended %d coordinator decisions", len(got))
	}
	st := c.Stats()
	if st.CrossTxns != 0 || st.LocalTxns == 0 {
		t.Fatalf("stats = cross %d local %d, want cross 0 local >0", st.CrossTxns, st.LocalTxns)
	}
}

func TestCrossSystemCommit(t *testing.T) {
	c := MustNew(smallConfig(4))
	keyA, keyB := crossPair(t, c)
	cl := c.NewClient()
	err := cl.Txn(func(tx *Txn) error {
		tx.Put(keyA, []byte("alpha"))
		tx.Put(keyB, []byte("beta"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Peek(keyA); !bytes.Equal(v, []byte("alpha")) {
		t.Fatalf("keyA = %q", v)
	}
	if v, _ := c.Peek(keyB); !bytes.Equal(v, []byte("beta")) {
		t.Fatalf("keyB = %q", v)
	}
	decs := c.Decisions()
	if len(decs) != 1 || !decs[0].Commit {
		t.Fatalf("decisions = %+v, want one commit", decs)
	}
	wantA, wantB := c.Router().SystemFor(keyA), c.Router().SystemFor(keyB)
	if len(decs[0].Participants) != 2 {
		t.Fatalf("participants = %v", decs[0].Participants)
	}
	for _, p := range decs[0].Participants {
		if p != wantA && p != wantB {
			t.Fatalf("unexpected participant %d (want %d and %d)", p, wantA, wantB)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossReadValidation: a cross-System RMW whose read is invalidated
// between the body and commit must retry and apply the fresh value.
func TestCrossReadValidation(t *testing.T) {
	c := MustNew(smallConfig(4))
	keyA, keyB := crossPair(t, c)
	if err := c.Load(keyA, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(keyB, []byte{1}); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient()
	other := c.NewClient()
	attempt := 0
	err := cl.Txn(func(tx *Txn) error {
		attempt++
		va, _, err := tx.Get(keyA)
		if err != nil {
			return err
		}
		if attempt == 1 {
			// Invalidate the read before commit: the first attempt must
			// conflict at prepare, not commit a stale sum.
			if err := other.Put(keyA, []byte{10}); err != nil {
				return err
			}
		}
		vb, _, err := tx.Get(keyB)
		if err != nil {
			return err
		}
		tx.Put(keyB, []byte{va[0] + vb[0]})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempt < 2 {
		t.Fatalf("transaction committed on attempt %d despite invalidated read", attempt)
	}
	if v, _ := c.Peek(keyB); v[0] != 11 {
		t.Fatalf("keyB = %d, want 11 (10 from the interfering write + 1)", v[0])
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPrepareConflictAborts: a foreign intent on one participant must abort
// the whole transaction (bounded by MaxAttempts), leaving the other
// participant untouched; releasing the intent lets it commit.
func TestPrepareConflictAborts(t *testing.T) {
	cfg := smallConfig(4)
	cfg.MaxAttempts = 4
	c := MustNew(cfg)
	keyA, keyB := crossPair(t, c)
	// Park a foreign intent on keyB's System.
	nb := c.Node(c.Router().SystemFor(keyB))
	setup := containers.SetupTx(nb.System())
	if err := nb.Store().PrepareIntent(setup, keyB, 999, store.IntentPut, []byte("parked"), 0); err != nil {
		t.Fatal(err)
	}

	cl := c.NewClient()
	err := cl.Txn(func(tx *Txn) error {
		tx.Put(keyA, []byte("a"))
		tx.Put(keyB, []byte("b"))
		return nil
	})
	if !errors.Is(err, ErrContention) {
		t.Fatalf("err = %v, want ErrContention", err)
	}
	if _, ok := c.Peek(keyA); ok {
		t.Fatal("aborted transaction leaked a write to keyA")
	}
	st := c.Stats()
	if st.CrossAborts == 0 || st.PrepareConflicts == 0 {
		t.Fatalf("stats = %+v, want recorded aborts and prepare conflicts", st)
	}
	for _, d := range c.Decisions() {
		if d.Commit {
			t.Fatalf("conflicted transaction logged a commit decision: %+v", d)
		}
	}

	// Release the parked intent; the same transaction now goes through.
	if err := nb.Store().DiscardIntent(setup, keyB, 999); err != nil {
		t.Fatal(err)
	}
	if err := cl.Txn(func(tx *Txn) error {
		tx.Put(keyA, []byte("a"))
		tx.Put(keyB, []byte("b"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Peek(keyB); !bytes.Equal(v, []byte("b")) {
		t.Fatalf("keyB = %q after release", v)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestIntentBlocksReaders: while an intent is pending, single-key reads of
// that key wait (here: exhaust MaxAttempts) instead of returning a value
// that may be mid-replacement.
func TestIntentBlocksReaders(t *testing.T) {
	cfg := smallConfig(2)
	cfg.MaxAttempts = 3
	c := MustNew(cfg)
	if err := c.Load([]byte("k"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	n := c.Node(c.Router().SystemFor([]byte("k")))
	setup := containers.SetupTx(n.System())
	if err := n.Store().PrepareIntent(setup, []byte("k"), 7, store.IntentPut, []byte("new"), 0); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient()
	if _, _, err := cl.Get([]byte("k")); !errors.Is(err, ErrContention) {
		t.Fatalf("Get under intent err = %v, want ErrContention", err)
	}
	st := c.Stats()
	if st.IntentWaits == 0 {
		t.Fatal("no intent waits recorded")
	}
	if _, err := n.Store().ApplyIntent(setup, []byte("k"), 7); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cl.Get([]byte("k"))
	if err != nil || !ok || !bytes.Equal(v, []byte("new")) {
		t.Fatalf("Get after apply = %q,%v,%v", v, ok, err)
	}
}

func TestTxnUserAbort(t *testing.T) {
	c := MustNew(smallConfig(4))
	keyA, keyB := crossPair(t, c)
	sentinel := errors.New("user abort")
	cl := c.NewClient()
	err := cl.Txn(func(tx *Txn) error {
		tx.Put(keyA, []byte("x"))
		tx.Put(keyB, []byte("y"))
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if _, ok := c.Peek(keyA); ok {
		t.Fatal("aborted body leaked a write")
	}
	if len(c.Decisions()) != 0 {
		t.Fatal("aborted body reached the coordinator")
	}
}

// TestTxnReadYourWrites: buffered writes are visible to the body's reads.
func TestTxnReadYourWrites(t *testing.T) {
	c := MustNew(smallConfig(2))
	cl := c.NewClient()
	err := cl.Txn(func(tx *Txn) error {
		tx.Put([]byte("k"), []byte("one"))
		if v, ok, _ := tx.Get([]byte("k")); !ok || !bytes.Equal(v, []byte("one")) {
			return fmt.Errorf("read-your-write saw %q,%v", v, ok)
		}
		tx.Delete([]byte("k"))
		if _, ok, _ := tx.Get([]byte("k")); ok {
			return fmt.Errorf("read-your-delete still present")
		}
		tx.Put([]byte("k"), []byte("two"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Peek([]byte("k")); !bytes.Equal(v, []byte("two")) {
		t.Fatalf("final = %q, want two", v)
	}
}

// The cross-engine conformance battery (enginetest.RunDB) runs from the kv
// package's tests against both the cluster and the single-System store —
// importing enginetest here would cycle through kv.

// --- batched operations ---

// TestBatchLocalAndCross: a batch whose keys live on one System commits as
// one local transaction (no coordinator decision); a batch spanning Systems
// runs one 2PC decision covering per-System grouped prepares. Per-op
// results follow batch order either way.
func TestBatchLocalAndCross(t *testing.T) {
	c := MustNew(smallConfig(4))
	cl := c.NewClient()
	keyA, keyB := crossPair(t, c)

	// Local batch: both ops on keyA's System (same key twice).
	res, err := cl.Batch([]BatchOp{
		{Kind: BatchPut, Key: keyA, Value: []byte("one")},
		{Kind: BatchGet, Key: keyA},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res[1].Found || !bytes.Equal(res[1].Value, []byte("one")) {
		t.Fatalf("local batch get-after-put = %+v", res[1])
	}
	if len(c.Decisions()) != 0 {
		t.Fatalf("single-System batch reached the coordinator: %+v", c.Decisions())
	}

	// Cross batch: keys on two Systems, gets observing in-batch puts,
	// deletes reporting prior presence.
	res, err = cl.Batch([]BatchOp{
		{Kind: BatchGet, Key: keyB},                         // absent
		{Kind: BatchPut, Key: keyB, Value: []byte("two")},   //
		{Kind: BatchGet, Key: keyB},                         // sees "two"
		{Kind: BatchDelete, Key: keyA},                      // present ("one")
		{Kind: BatchGet, Key: keyA},                         // absent now
		{Kind: BatchPut, Key: keyA, Value: []byte("three")}, //
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Found {
		t.Fatalf("cross batch op0 = %+v, want absent", res[0])
	}
	if !res[2].Found || !bytes.Equal(res[2].Value, []byte("two")) {
		t.Fatalf("cross batch get-after-put = %+v", res[2])
	}
	if !res[3].Found {
		t.Fatalf("cross batch delete = %+v, want Found", res[3])
	}
	if res[4].Found {
		t.Fatalf("cross batch get-after-delete = %+v", res[4])
	}
	decs := c.Decisions()
	if len(decs) != 1 || !decs[0].Commit || len(decs[0].Participants) != 2 {
		t.Fatalf("cross batch decisions = %+v, want one 2-participant commit", decs)
	}
	if v, _ := c.Peek(keyA); !bytes.Equal(v, []byte("three")) {
		t.Fatalf("keyA = %q", v)
	}
	if v, _ := c.Peek(keyB); !bytes.Equal(v, []byte("two")) {
		t.Fatalf("keyB = %q", v)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchConflictAborts: a foreign intent on one participant aborts the
// whole cross-System batch all-or-nothing (bounded by MaxAttempts), leaving
// every other participant untouched.
func TestBatchConflictAborts(t *testing.T) {
	cfg := smallConfig(4)
	cfg.MaxAttempts = 4
	c := MustNew(cfg)
	keyA, keyB := crossPair(t, c)
	nb := c.Node(c.Router().SystemFor(keyB))
	setup := containers.SetupTx(nb.System())
	if err := nb.Store().PrepareIntent(setup, keyB, 999, store.IntentPut, []byte("parked"), 0); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient()
	_, err := cl.Batch([]BatchOp{
		{Kind: BatchPut, Key: keyA, Value: []byte("a")},
		{Kind: BatchPut, Key: keyB, Value: []byte("b")},
	})
	if !errors.Is(err, ErrContention) {
		t.Fatalf("err = %v, want ErrContention", err)
	}
	if _, ok := c.Peek(keyA); ok {
		t.Fatal("aborted batch leaked a write to keyA")
	}
	if err := nb.Store().DiscardIntent(setup, keyB, 999); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Batch([]BatchOp{
		{Kind: BatchPut, Key: keyA, Value: []byte("a")},
		{Kind: BatchPut, Key: keyB, Value: []byte("b")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// --- snapshot scans ---

// TestScanSnapshotOrderedAndBlocked: the snapshot scan merges Systems into
// one ascending key order, honors range bounds and limits, and refuses to
// read past a pending in-range intent (the range is undecided).
func TestScanSnapshotOrderedAndBlocked(t *testing.T) {
	cfg := smallConfig(3)
	cfg.MaxAttempts = 3
	c := MustNew(cfg)
	for i := 0; i < 40; i++ {
		if err := c.Load([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	cl := c.NewClient()
	entries, err := cl.ScanSnapshot([]byte("k10"), []byte("k20"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("range scan yielded %d entries, want 10", len(entries))
	}
	for i, e := range entries {
		want := fmt.Sprintf("k%02d", 10+i)
		if string(e.Key) != want {
			t.Fatalf("entry %d = %q, want %q", i, e.Key, want)
		}
	}
	limited, err := cl.ScanSnapshot(nil, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 7 || string(limited[0].Key) != "k00" {
		t.Fatalf("limited scan = %d entries starting %q", len(limited), limited[0].Key)
	}

	// Park an intent inside the range: the scan must wait it out (here:
	// exhaust MaxAttempts) instead of returning an undecided range.
	victim := []byte("k15")
	n := c.Node(c.Router().SystemFor(victim))
	setup := containers.SetupTx(n.System())
	if err := n.Store().PrepareIntent(setup, victim, 7, store.IntentPut, []byte("new"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ScanSnapshot([]byte("k10"), []byte("k20"), 0); !errors.Is(err, ErrContention) {
		t.Fatalf("scan over pending intent err = %v, want ErrContention", err)
	}
	// Out-of-range scans are unaffected.
	if _, err := cl.ScanSnapshot([]byte("k20"), []byte("k30"), 0); err != nil {
		t.Fatalf("out-of-range scan: %v", err)
	}
	if _, err := n.Store().ApplyIntent(setup, victim, 7); err != nil {
		t.Fatal(err)
	}
	after, err := cl.ScanSnapshot([]byte("k15"), []byte("k16"), 0)
	if err != nil || len(after) != 1 || !bytes.Equal(after[0].Value, []byte("new")) {
		t.Fatalf("scan after apply = %+v, %v", after, err)
	}
}

// TestTxnScanOverlay: an in-transaction scan observes the transaction's own
// buffered writes overlaid on the committed snapshot.
func TestTxnScanOverlay(t *testing.T) {
	c := MustNew(smallConfig(2))
	for _, k := range []string{"b", "d", "f"} {
		if err := c.Load([]byte(k), []byte("old-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	cl := c.NewClient()
	err := cl.Txn(func(tx *Txn) error {
		tx.Put([]byte("a"), []byte("new-a")) // insert before range start
		tx.Put([]byte("d"), []byte("new-d")) // overwrite
		tx.Delete([]byte("f"))               // remove
		entries, err := tx.Scan([]byte("a"), []byte("z"), 0)
		if err != nil {
			return err
		}
		var got []string
		for _, e := range entries {
			got = append(got, string(e.Key)+"="+string(e.Value))
		}
		want := "a=new-a b=old-b d=new-d"
		if joined := strings.Join(got, " "); joined != want {
			return fmt.Errorf("overlay scan = %q, want %q", joined, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedReadIntentsCluster: a pending *read* intent no longer blocks
// readers or snapshot scans — only writers — and read intents from
// different transactions coexist on one key (the intent-aware read-sharing
// follow-up from the ROADMAP).
func TestSharedReadIntentsCluster(t *testing.T) {
	cfg := smallConfig(2)
	cfg.MaxAttempts = 4
	c := MustNew(cfg)
	if err := c.Load([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	n := c.Node(c.Router().SystemFor([]byte("k")))
	setup := containers.SetupTx(n.System())
	// Two foreign transactions pin the key with shared read intents.
	if err := n.Store().PrepareIntent(setup, []byte("k"), 101, store.IntentRead, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Store().PrepareIntent(setup, []byte("k"), 102, store.IntentRead, nil, 0); err != nil {
		t.Fatalf("second reader refused to share: %v", err)
	}

	cl := c.NewClient()
	// Reads and snapshot scans pass straight through the pinned key.
	if v, ok, err := cl.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get under read intents = %q,%v,%v", v, ok, err)
	}
	if entries, err := cl.ScanSnapshot(nil, nil, 0); err != nil || len(entries) != 1 {
		t.Fatalf("ScanSnapshot under read intents = %v, %v", entries, err)
	}
	// Writers must wait for the pinned readers (bounded: ErrContention).
	if err := cl.Put([]byte("k"), []byte("w")); !errors.Is(err, ErrContention) {
		t.Fatalf("Put under read intents err = %v, want ErrContention", err)
	}
	// Releasing both readers unblocks the writer.
	if _, err := n.Store().ApplyIntent(setup, []byte("k"), 101); err != nil {
		t.Fatal(err)
	}
	if err := n.Store().DiscardIntent(setup, []byte("k"), 102); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put([]byte("k"), []byte("w")); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
