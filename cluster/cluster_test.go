package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"rhtm"
	"rhtm/containers"
	"rhtm/internal/enginetest"
	"rhtm/store"
)

// smallConfig builds a test cluster: small Systems, RH1 by default.
func smallConfig(systems int) Config {
	return Config{
		Systems:    systems,
		DataWords:  1 << 15,
		ArenaWords: 1 << 13,
	}
}

// --- routing (satellite: property test) ---

// TestKeyHashGolden pins the routing hash to the published FNV-1a 64-bit
// test vectors: the assignment must be stable across runs, processes, and
// refactors — a silent hash change would re-route every key.
func TestKeyHashGolden(t *testing.T) {
	golden := map[string]uint64{
		"":       0xcbf29ce484222325,
		"a":      0xaf63dc4c8601ec8c,
		"foobar": 0x85944171f73967e8,
	}
	for k, want := range golden {
		if got := store.KeyHash([]byte(k)); got != want {
			t.Errorf("KeyHash(%q) = %#x, want %#x", k, got, want)
		}
	}
	// Router and store shard assignment agree with the raw hash.
	r := Router{systems: 7}
	sh := store.NewSharded(rhtm.MustNewSystem(rhtm.DefaultConfig(1<<16)), 7, store.Options{ArenaWords: 1 << 10})
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("user%08d", i))
		want := int(store.KeyHash(key) % 7)
		if got := r.SystemFor(key); got != want {
			t.Fatalf("Router.SystemFor(%s) = %d, want %d", key, got, want)
		}
		if got := sh.ShardIndex(key); got != want {
			t.Fatalf("Sharded.ShardIndex(%s) = %d, want %d", key, got, want)
		}
	}
}

// TestRoutingBalanced: over 10k random keys no System (or shard) may hold
// more than twice the mean — fnv1a must spread realistic key shapes.
func TestRoutingBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := make([][]byte, 10_000)
	for i := range keys {
		switch i % 3 {
		case 0:
			keys[i] = []byte(fmt.Sprintf("user%08d", rng.Intn(1_000_000)))
		case 1:
			keys[i] = []byte(fmt.Sprintf("order:%d:%d", rng.Intn(1000), rng.Intn(1000)))
		default:
			b := make([]byte, rng.Intn(20)+1)
			rng.Read(b)
			keys[i] = b
		}
	}
	for _, systems := range []int{2, 4, 8} {
		r := Router{systems: systems}
		counts := make([]int, systems)
		for _, k := range keys {
			counts[r.SystemFor(k)]++
		}
		mean := len(keys) / systems
		for id, c := range counts {
			if c > 2*mean {
				t.Errorf("systems=%d: System %d holds %d keys, > 2x mean %d", systems, id, c, mean)
			}
			if c == 0 {
				t.Errorf("systems=%d: System %d holds no keys", systems, id)
			}
		}
	}
}

// --- 2PC mechanics ---

// crossPair returns two keys the router places on different Systems.
func crossPair(t *testing.T, c *Cluster) ([]byte, []byte) {
	t.Helper()
	a := []byte("home-0")
	for i := 0; ; i++ {
		b := []byte(fmt.Sprintf("away-%d", i))
		if c.Router().SystemFor(b) != c.Router().SystemFor(a) {
			return a, b
		}
	}
}

func TestLocalOpsLogNoDecisions(t *testing.T) {
	c := MustNew(smallConfig(2))
	cl := c.NewClient()
	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cl.Get([]byte("k"))
	if err != nil || !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if _, err := cl.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	// Single-System multi-key transactions stay local too.
	err = cl.Txn(func(tx *Txn) error {
		tx.Put([]byte("x"), []byte("1"))
		v, _, err := tx.Get([]byte("x"))
		if err != nil {
			return err
		}
		tx.Put([]byte("x"), append(v, '2'))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Decisions(); len(got) != 0 {
		t.Fatalf("local operations appended %d coordinator decisions", len(got))
	}
	st := c.Stats()
	if st.CrossTxns != 0 || st.LocalTxns == 0 {
		t.Fatalf("stats = cross %d local %d, want cross 0 local >0", st.CrossTxns, st.LocalTxns)
	}
}

func TestCrossSystemCommit(t *testing.T) {
	c := MustNew(smallConfig(4))
	keyA, keyB := crossPair(t, c)
	cl := c.NewClient()
	err := cl.Txn(func(tx *Txn) error {
		tx.Put(keyA, []byte("alpha"))
		tx.Put(keyB, []byte("beta"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Peek(keyA); !bytes.Equal(v, []byte("alpha")) {
		t.Fatalf("keyA = %q", v)
	}
	if v, _ := c.Peek(keyB); !bytes.Equal(v, []byte("beta")) {
		t.Fatalf("keyB = %q", v)
	}
	decs := c.Decisions()
	if len(decs) != 1 || !decs[0].Commit {
		t.Fatalf("decisions = %+v, want one commit", decs)
	}
	wantA, wantB := c.Router().SystemFor(keyA), c.Router().SystemFor(keyB)
	if len(decs[0].Participants) != 2 {
		t.Fatalf("participants = %v", decs[0].Participants)
	}
	for _, p := range decs[0].Participants {
		if p != wantA && p != wantB {
			t.Fatalf("unexpected participant %d (want %d and %d)", p, wantA, wantB)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossReadValidation: a cross-System RMW whose read is invalidated
// between the body and commit must retry and apply the fresh value.
func TestCrossReadValidation(t *testing.T) {
	c := MustNew(smallConfig(4))
	keyA, keyB := crossPair(t, c)
	if err := c.Load(keyA, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(keyB, []byte{1}); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient()
	other := c.NewClient()
	attempt := 0
	err := cl.Txn(func(tx *Txn) error {
		attempt++
		va, _, err := tx.Get(keyA)
		if err != nil {
			return err
		}
		if attempt == 1 {
			// Invalidate the read before commit: the first attempt must
			// conflict at prepare, not commit a stale sum.
			if err := other.Put(keyA, []byte{10}); err != nil {
				return err
			}
		}
		vb, _, err := tx.Get(keyB)
		if err != nil {
			return err
		}
		tx.Put(keyB, []byte{va[0] + vb[0]})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempt < 2 {
		t.Fatalf("transaction committed on attempt %d despite invalidated read", attempt)
	}
	if v, _ := c.Peek(keyB); v[0] != 11 {
		t.Fatalf("keyB = %d, want 11 (10 from the interfering write + 1)", v[0])
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPrepareConflictAborts: a foreign intent on one participant must abort
// the whole transaction (bounded by MaxAttempts), leaving the other
// participant untouched; releasing the intent lets it commit.
func TestPrepareConflictAborts(t *testing.T) {
	cfg := smallConfig(4)
	cfg.MaxAttempts = 4
	c := MustNew(cfg)
	keyA, keyB := crossPair(t, c)
	// Park a foreign intent on keyB's System.
	nb := c.Node(c.Router().SystemFor(keyB))
	setup := containers.SetupTx(nb.System())
	if err := nb.Store().PrepareIntent(setup, keyB, 999, store.IntentPut, []byte("parked")); err != nil {
		t.Fatal(err)
	}

	cl := c.NewClient()
	err := cl.Txn(func(tx *Txn) error {
		tx.Put(keyA, []byte("a"))
		tx.Put(keyB, []byte("b"))
		return nil
	})
	if !errors.Is(err, ErrContention) {
		t.Fatalf("err = %v, want ErrContention", err)
	}
	if _, ok := c.Peek(keyA); ok {
		t.Fatal("aborted transaction leaked a write to keyA")
	}
	st := c.Stats()
	if st.CrossAborts == 0 || st.PrepareConflicts == 0 {
		t.Fatalf("stats = %+v, want recorded aborts and prepare conflicts", st)
	}
	for _, d := range c.Decisions() {
		if d.Commit {
			t.Fatalf("conflicted transaction logged a commit decision: %+v", d)
		}
	}

	// Release the parked intent; the same transaction now goes through.
	if err := nb.Store().DiscardIntent(setup, keyB, 999); err != nil {
		t.Fatal(err)
	}
	if err := cl.Txn(func(tx *Txn) error {
		tx.Put(keyA, []byte("a"))
		tx.Put(keyB, []byte("b"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Peek(keyB); !bytes.Equal(v, []byte("b")) {
		t.Fatalf("keyB = %q after release", v)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestIntentBlocksReaders: while an intent is pending, single-key reads of
// that key wait (here: exhaust MaxAttempts) instead of returning a value
// that may be mid-replacement.
func TestIntentBlocksReaders(t *testing.T) {
	cfg := smallConfig(2)
	cfg.MaxAttempts = 3
	c := MustNew(cfg)
	if err := c.Load([]byte("k"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	n := c.Node(c.Router().SystemFor([]byte("k")))
	setup := containers.SetupTx(n.System())
	if err := n.Store().PrepareIntent(setup, []byte("k"), 7, store.IntentPut, []byte("new")); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient()
	if _, _, err := cl.Get([]byte("k")); !errors.Is(err, ErrContention) {
		t.Fatalf("Get under intent err = %v, want ErrContention", err)
	}
	st := c.Stats()
	if st.IntentWaits == 0 {
		t.Fatal("no intent waits recorded")
	}
	if err := n.Store().ApplyIntent(setup, []byte("k"), 7); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cl.Get([]byte("k"))
	if err != nil || !ok || !bytes.Equal(v, []byte("new")) {
		t.Fatalf("Get after apply = %q,%v,%v", v, ok, err)
	}
}

func TestTxnUserAbort(t *testing.T) {
	c := MustNew(smallConfig(4))
	keyA, keyB := crossPair(t, c)
	sentinel := errors.New("user abort")
	cl := c.NewClient()
	err := cl.Txn(func(tx *Txn) error {
		tx.Put(keyA, []byte("x"))
		tx.Put(keyB, []byte("y"))
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if _, ok := c.Peek(keyA); ok {
		t.Fatal("aborted body leaked a write")
	}
	if len(c.Decisions()) != 0 {
		t.Fatal("aborted body reached the coordinator")
	}
}

// TestTxnReadYourWrites: buffered writes are visible to the body's reads.
func TestTxnReadYourWrites(t *testing.T) {
	c := MustNew(smallConfig(2))
	cl := c.NewClient()
	err := cl.Txn(func(tx *Txn) error {
		tx.Put([]byte("k"), []byte("one"))
		if v, ok, _ := tx.Get([]byte("k")); !ok || !bytes.Equal(v, []byte("one")) {
			return fmt.Errorf("read-your-write saw %q,%v", v, ok)
		}
		tx.Delete([]byte("k"))
		if _, ok, _ := tx.Get([]byte("k")); ok {
			return fmt.Errorf("read-your-delete still present")
		}
		tx.Put([]byte("k"), []byte("two"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Peek([]byte("k")); !bytes.Equal(v, []byte("two")) {
		t.Fatalf("final = %q, want two", v)
	}
}

// --- conformance battery across engines (tentpole acceptance) ---

// clusterFactory builds a 3-System cluster on the named engine with
// injected hardware aborts, so both RH1's fallback paths and 2PC's abort
// path get exercised.
func clusterFactory(engineName string) enginetest.ClusterFactory {
	return func(t *testing.T) (func() enginetest.ClusterKV, func() error) {
		cfg := smallConfig(3)
		cfg.NewEngine = func(s *rhtm.System) (rhtm.Engine, error) {
			const inject = 20
			switch engineName {
			case "RH1":
				return rhtm.NewRH1(s, rhtm.RH1Options{MixPercent: 100, InjectAbortPercent: inject}), nil
			case "RH2":
				return rhtm.NewRH2(s, rhtm.RH1Options{MixPercent: 100, InjectAbortPercent: inject}), nil
			case "TL2":
				return rhtm.NewTL2(s), nil
			case "StdHyTM":
				return rhtm.NewStandardHyTM(s, rhtm.HWOptions{InjectAbortPercent: inject}), nil
			case "NoRec":
				return rhtm.NewHybridNoRec(s, rhtm.HWOptions{InjectAbortPercent: inject}), nil
			case "Phased":
				return rhtm.NewPhasedTM(s, rhtm.HWOptions{InjectAbortPercent: inject}), nil
			default:
				return nil, fmt.Errorf("unknown engine %q", engineName)
			}
		}
		c := MustNew(cfg)
		return func() enginetest.ClusterKV { return c.NewClient() }, c.Validate
	}
}

func TestClusterConformance(t *testing.T) {
	for _, eng := range []string{"RH1", "RH2", "TL2", "StdHyTM", "NoRec", "Phased"} {
		enginetest.RunClusterKV(t, "Cluster3/"+eng, clusterFactory(eng))
	}
}

// Single-System degenerate cluster: the whole battery must hold when every
// transaction takes the local path.
func TestClusterConformanceSingleSystem(t *testing.T) {
	enginetest.RunClusterKV(t, "Cluster1/RH1", func(t *testing.T) (func() enginetest.ClusterKV, func() error) {
		c := MustNew(smallConfig(1))
		return func() enginetest.ClusterKV { return c.NewClient() }, c.Validate
	})
}
