package store

import (
	"bytes"
	"fmt"
	"testing"

	"rhtm"
	"rhtm/containers"
)

func TestIntentLifecycle(t *testing.T) {
	s := newSys(1 << 16)
	st := New(s, Options{ArenaWords: 1 << 13})
	tx := containers.SetupTx(s)
	key := []byte("balance")
	if err := st.Put(tx, key, []byte("old")); err != nil {
		t.Fatal(err)
	}

	// No intent yet.
	if st.AnyIntentOn(tx, key) {
		t.Fatal("fresh key reports a pending intent")
	}
	// Prepare a put intent: the committed value must not change yet.
	if err := st.PrepareIntent(tx, key, 42, IntentPut, []byte("new-value"), 0); err != nil {
		t.Fatal(err)
	}
	if owner, held := st.WriteIntentOn(tx, key); !held || owner != 42 {
		t.Fatalf("WriteIntentOn = (%d,%v), want (42,true)", owner, held)
	}
	if v, _ := st.Get(tx, key); !bytes.Equal(v, []byte("old")) {
		t.Fatalf("prepare changed the committed value to %q", v)
	}
	if got := st.PendingIntents(tx); got != 1 {
		t.Fatalf("PendingIntents = %d, want 1", got)
	}
	// A second transaction must be refused.
	if err := st.PrepareIntent(tx, key, 43, IntentPut, []byte("x"), 0); err != ErrIntentHeld {
		t.Fatalf("second prepare err = %v, want ErrIntentHeld", err)
	}
	// Apply with the wrong owner fails and leaves the intent in place; with
	// the right owner it installs.
	if _, err := st.ApplyIntent(tx, key, 7); err == nil {
		t.Fatal("apply with wrong txid succeeded")
	}
	if _, held := st.WriteIntentOn(tx, key); !held {
		t.Fatal("failed apply consumed the intent")
	}
	st2 := New(s, Options{ArenaWords: 1 << 13})
	if err := st2.Put(tx, key, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := st2.PrepareIntent(tx, key, 42, IntentPut, []byte("new-value"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.ApplyIntent(tx, key, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := st2.Get(tx, key); !bytes.Equal(v, []byte("new-value")) {
		t.Fatalf("after apply value = %q, want new-value", v)
	}
	if got := st2.PendingIntents(tx); got != 0 {
		t.Fatalf("PendingIntents after apply = %d, want 0", got)
	}
	if err := st2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIntentKinds(t *testing.T) {
	s := newSys(1 << 16)
	st := New(s, Options{ArenaWords: 1 << 13})
	tx := containers.SetupTx(s)

	// Delete intent removes the key on apply.
	if err := st.Put(tx, []byte("gone"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := st.PrepareIntent(tx, []byte("gone"), 1, IntentDelete, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyIntent(tx, []byte("gone"), 1); err != nil {
		t.Fatal(err)
	}
	if st.Has(tx, []byte("gone")) {
		t.Fatal("delete intent did not remove the key")
	}

	// Read intent locks without mutating; apply is a pure release.
	if err := st.Put(tx, []byte("ro"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := st.PrepareIntent(tx, []byte("ro"), 2, IntentRead, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyIntent(tx, []byte("ro"), 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Get(tx, []byte("ro")); !bytes.Equal(v, []byte("v")) {
		t.Fatalf("read intent mutated the value: %q", v)
	}

	// Discard releases a put intent without applying it.
	if err := st.PrepareIntent(tx, []byte("never"), 3, IntentPut, []byte("phantom"), 0); err != nil {
		t.Fatal(err)
	}
	if err := st.DiscardIntent(tx, []byte("never"), 3); err != nil {
		t.Fatal(err)
	}
	if st.Has(tx, []byte("never")) {
		t.Fatal("discarded put intent reached the store")
	}
	if _, err := st.ApplyIntent(tx, []byte("never"), 3); err != ErrIntentMissing {
		t.Fatalf("apply after discard err = %v, want ErrIntentMissing", err)
	}
	if got := st.PendingIntents(tx); got != 0 {
		t.Fatalf("PendingIntents = %d, want 0", got)
	}
}

// TestIntentAbortRollback: a prepare inside an aborted engine transaction
// must leave no intent behind (intent state is simulated words, so the
// engine's rollback covers it).
func TestIntentAbortRollback(t *testing.T) {
	s := newSys(1 << 16)
	st := New(s, Options{ArenaWords: 1 << 13})
	eng := rhtm.NewTL2(s)
	th := eng.NewThread()
	sentinel := fmt.Errorf("user abort")
	err := th.Atomic(func(tx rhtm.Tx) error {
		if err := st.PrepareIntent(tx, []byte("k"), 9, IntentPut, []byte("v"), 0); err != nil {
			return err
		}
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
	tx := containers.SetupTx(s)
	if st.AnyIntentOn(tx, []byte("k")) {
		t.Fatal("aborted prepare left an intent")
	}
	if got := st.PendingIntents(tx); got != 0 {
		t.Fatalf("PendingIntents = %d, want 0", got)
	}
}

// TestIntentFreeListReuse: a prepare/apply cycle must recycle its blocks —
// the intent machinery reaches steady state like the data path does.
func TestIntentFreeListReuse(t *testing.T) {
	s := newSys(1 << 16)
	st := New(s, Options{ArenaWords: 1 << 13})
	tx := containers.SetupTx(s)
	if err := st.Put(tx, []byte("k"), make([]byte, 24)); err != nil {
		t.Fatal(err)
	}
	prime := func(txid uint64) {
		if err := st.PrepareIntent(tx, []byte("k"), txid, IntentPut, make([]byte, 24), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := st.ApplyIntent(tx, []byte("k"), txid); err != nil {
			t.Fatal(err)
		}
	}
	prime(1)
	after1 := st.Arena().BumpedWords()
	for i := uint64(2); i < 40; i++ {
		prime(i)
	}
	if got := st.Arena().BumpedWords(); got != after1 {
		t.Fatalf("intent churn grew the arena: %d -> %d words", after1, got)
	}
}

// TestIntentApplyReservedSurvivesFullArena: once a put intent is prepared,
// applying it must succeed even if the arena is exhausted in between — the
// prepare reserved the apply-time value block, so a decided transaction can
// always be discharged (the cluster's phase 2 relies on this).
func TestIntentApplyReservedSurvivesFullArena(t *testing.T) {
	s := newSys(1 << 16)
	st := New(s, Options{ArenaWords: 1 << 10})
	tx := containers.SetupTx(s)
	key := []byte("grows")
	if err := st.Put(tx, key, make([]byte, 16)); err != nil { // class-4 value block
		t.Fatal(err)
	}
	newVal := bytes.Repeat([]byte{7}, 40) // class-8: apply cannot rewrite in place
	if err := st.PrepareIntent(tx, key, 5, IntentPut, newVal, 0); err != nil {
		t.Fatal(err)
	}
	// Exhaust the bump frontier completely.
	for {
		if _, err := st.Arena().TxAlloc(tx, 1); err != nil {
			break
		}
	}
	// A plain Put of the same shape now fails for want of a class-8 block...
	if err := st.Put(tx, []byte("other"), bytes.Repeat([]byte{9}, 40)); err != ErrArenaFull {
		t.Fatalf("plain Put on full arena err = %v, want ErrArenaFull", err)
	}
	// ...but the decided apply still goes through on its reservation.
	if _, err := st.ApplyIntent(tx, key, 5); err != nil {
		t.Fatalf("ApplyIntent on full arena: %v", err)
	}
	if v, _ := st.Get(tx, key); !bytes.Equal(v, newVal) {
		t.Fatalf("applied value = %x", v)
	}
}

func TestStoreStats(t *testing.T) {
	s := newSys(1 << 17)
	st := New(s, Options{ArenaWords: 1 << 13})
	tx := containers.SetupTx(s)
	for i := 0; i < 20; i++ {
		if err := st.Put(tx, []byte(fmt.Sprintf("key%02d", i)), make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.PrepareIntent(tx, []byte("key01"), 5, IntentRead, nil, 0); err != nil {
		t.Fatal(err)
	}
	// Delete last so its freed blocks are still on the free lists below
	// (an allocation would recycle them).
	st.Delete(tx, []byte("key00"))
	got := st.Stats(tx)
	if got.LiveKeys != 19 {
		t.Fatalf("LiveKeys = %d, want 19", got.LiveKeys)
	}
	if got.PendingIntents != 1 {
		t.Fatalf("PendingIntents = %d, want 1", got.PendingIntents)
	}
	if got.Arena.CapacityWords != 1<<13 {
		t.Fatalf("CapacityWords = %d, want %d", got.Arena.CapacityWords, 1<<13)
	}
	// One record was deleted, so its blocks sit on free lists.
	if got.Arena.FreeListWords <= 0 {
		t.Fatal("FreeListWords = 0 after a delete")
	}
	if got.Arena.LiveWords+got.Arena.FreeListWords != got.Arena.BumpedWords {
		t.Fatalf("live %d + free %d != bumped %d",
			got.Arena.LiveWords, got.Arena.FreeListWords, got.Arena.BumpedWords)
	}
	// Sharded aggregates.
	sh := NewSharded(s, 2, Options{ArenaWords: 1 << 12})
	for i := 0; i < 10; i++ {
		if err := sh.Put(tx, []byte(fmt.Sprintf("u%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	agg := sh.Stats(tx)
	if agg.LiveKeys != 10 {
		t.Fatalf("sharded LiveKeys = %d, want 10", agg.LiveKeys)
	}
	if agg.Arena.CapacityWords != 2<<12 {
		t.Fatalf("sharded CapacityWords = %d, want %d", agg.Arena.CapacityWords, 2<<12)
	}
}
