package store

import (
	"rhtm"
)

// The commit-event log is the storage half of the kv layer's revision and
// watch machinery. Every Store owns one EventLog: a revision sequence word
// plus a bounded ring of event records, all in simulated memory, mutated
// only under the writer's own transaction. That placement is the whole
// design: because the append is transactional with the data mutation, an
// aborted attempt logs nothing, a committed transaction logs exactly once,
// and the log order of any two events for the same key equals their commit
// order — the engine's conflict detection (any engine's) serializes writers
// on the sequence word exactly as it serializes them on the data. No
// host-side ordering protocol is needed, and the substitution thesis
// extends to the event plumbing: hardware and software paths produce
// identical logs.
//
// The cost is equally explicit: all writers of one Store conflict on the
// sequence and head words, so revision-stamped writes serialize per Store.
// Sharded stores and cluster Systems each own independent logs (one
// revision clock per shard/System), which is what keeps the hot-spot
// per-partition instead of global — the same trade real coordination
// services make (etcd serializes every write through one raft log; this
// store serializes per shard). DESIGN.md §8 quantifies the overhead.
//
// Record layout (words, addressed modulo the ring capacity so records may
// wrap):
//
//	word 0  header: kind (bits 0..7) | value-elided flag (bit 8)
//	        | key bytes (bits 16..39) | value bytes (bits 40..63)
//	word 1  revision
//	then    ceil(keyBytes/8) key words, ceil(valueBytes/8) value words,
//	        packed little-endian like every varlen block (codec.go)
//
// head counts words ever appended (monotone); tail is the offset of the
// oldest fully retained record. Appends advance tail past whole records
// before overwriting them, so a reader positioned at or after tail always
// sees well-formed records. Values too large for the ring are elided
// (flagged in the header); keys too large drop the event entirely onto the
// dropped counter — both bounded-buffer facts the kv layer surfaces as an
// explicit loss marker rather than hiding.

// EvKind classifies one logged event.
type EvKind uint8

const (
	// EvPut records a key's insert or overwrite.
	EvPut EvKind = iota
	// EvDelete records a key's removal.
	EvDelete
)

// Ev is one decoded commit event.
type Ev struct {
	Kind EvKind
	Key  []byte
	// Value is the written value for EvPut; nil when ValueElided (the value
	// was too large for the ring) or for EvDelete.
	Value       []byte
	ValueElided bool
	// Rev is the revision the write was stamped with: the owning Store's
	// monotonic commit version. Per key, revisions strictly increase in log
	// order.
	Rev uint64
}

// DefaultLogWords sizes a store's event ring when Options.LogWords is zero.
const DefaultLogWords = 1 << 11

// minLogWords bounds LogWords from below so the ring can hold at least a
// handful of small records.
const minLogWords = 64

// EventLog is one store's revision clock and bounded commit-event ring.
type EventLog struct {
	sys     *rhtm.System
	seq     rhtm.Addr // one word: last assigned revision
	head    rhtm.Addr // one word: total words ever appended
	tail    rhtm.Addr // one word: offset of the oldest retained record
	dropped rhtm.Addr // one word: events skipped (key larger than the ring)
	floor   rhtm.Addr // one word: revision at or below which history is incomplete
	buf     rhtm.Addr
	cap     int
}

// NewEventLog allocates a log of the given ring capacity (words) on s. Call
// during single-threaded setup.
func NewEventLog(s *rhtm.System, words int) *EventLog {
	if words <= 0 {
		words = DefaultLogWords
	}
	if words < minLogWords {
		words = minLogWords
	}
	return &EventLog{
		sys:     s,
		seq:     s.MustAlloc(1),
		head:    s.MustAlloc(1),
		tail:    s.MustAlloc(1),
		dropped: s.MustAlloc(1),
		floor:   s.MustAlloc(1),
		buf:     s.MustAlloc(words),
		cap:     words,
	}
}

// NextRev advances and returns the store's revision clock under tx. Every
// writer loads and stores the sequence word, which is what serializes
// concurrent writers of one Store and makes per-key revisions monotonic in
// commit order.
func (l *EventLog) NextRev(tx rhtm.Tx) uint64 {
	r := tx.Load(l.seq) + 1
	tx.Store(l.seq, r)
	return r
}

// AdvanceTo raises the revision clock to at least rev without assigning a
// revision — the recovery path's clock restore, so post-recovery writes
// continue the logged sequence instead of reusing revisions.
func (l *EventLog) AdvanceTo(tx rhtm.Tx, rev uint64) {
	if tx.Load(l.seq) < rev {
		tx.Store(l.seq, rev)
	}
}

// MarkHistoryFloor records that event history at or below rev cannot be
// trusted complete. Recovery calls it after replay: the rebuilt ring holds
// the replayed writes' events, but a checkpoint folds overwritten
// revisions and deletes away, so a watcher asking for replay from the
// recovered range must get an explicit loss marker rather than a silently
// thinned history.
func (l *EventLog) MarkHistoryFloor(tx rhtm.Tx, rev uint64) {
	if tx.Load(l.floor) < rev {
		tx.Store(l.floor, rev)
	}
}

// HistoryFloor returns the incomplete-history watermark (0 = the ring's
// whole retained history is genuine).
func (l *EventLog) HistoryFloor(tx rhtm.Tx) uint64 { return tx.Load(l.floor) }

// word returns the ring word backing monotone offset pos.
func (l *EventLog) word(pos uint64) rhtm.Addr {
	return l.buf + rhtm.Addr(pos%uint64(l.cap))
}

// header packing.
const (
	evKindMask    = 0xff
	evElidedBit   = 1 << 8
	evKeyShift    = 16
	evValShift    = 40
	evLenMask     = 0xffffff // 24 bits each for key and value byte lengths
	evHeaderWords = 2
)

// recWords returns the total words of the record whose header is at
// monotone offset pos.
func (l *EventLog) recWords(tx rhtm.Tx, pos uint64) uint64 {
	h := tx.Load(l.word(pos))
	kb := int(h >> evKeyShift & evLenMask)
	vb := int(h >> evValShift & evLenMask)
	return uint64(evHeaderWords + (kb+7)/8 + (vb+7)/8)
}

// Append logs one event under tx. Values that would occupy more than a
// quarter of the ring are elided; keys that would are counted as dropped
// (the kv layer's watch hub reports the gap as an explicit loss).
func (l *EventLog) Append(tx rhtm.Tx, kind EvKind, key, value []byte, rev uint64) {
	kw := (len(key) + 7) / 8
	vw := (len(value) + 7) / 8
	elided := false
	if evHeaderWords+kw+vw > l.cap/4 {
		value, vw, elided = nil, 0, true
	}
	if evHeaderWords+kw > l.cap/2 {
		tx.Store(l.dropped, tx.Load(l.dropped)+1)
		return
	}
	rec := uint64(evHeaderWords + kw + vw)
	h := tx.Load(l.head)
	t := tx.Load(l.tail)
	for h+rec-t > uint64(l.cap) {
		t += l.recWords(tx, t)
	}
	if t != tx.Load(l.tail) {
		tx.Store(l.tail, t)
	}
	hdr := uint64(kind) | uint64(len(key))<<evKeyShift | uint64(len(value))<<evValShift
	if elided {
		hdr |= evElidedBit
	}
	tx.Store(l.word(h), hdr)
	tx.Store(l.word(h+1), rev)
	writeRingBytes(tx, l, h+evHeaderWords, key)
	writeRingBytes(tx, l, h+evHeaderWords+uint64(kw), value)
	tx.Store(l.head, h+rec)
}

// writeRingBytes packs b into ring words starting at monotone offset pos.
func writeRingBytes(tx rhtm.Tx, l *EventLog, pos uint64, b []byte) {
	for i := 0; i < len(b); i += 8 {
		var w uint64
		for j := 0; j < 8 && i+j < len(b); j++ {
			w |= uint64(b[i+j]) << (8 * uint(j))
		}
		tx.Store(l.word(pos+uint64(i/8)), w)
	}
}

// readRingBytes decodes n bytes from ring words starting at offset pos.
func readRingBytes(tx rhtm.Tx, l *EventLog, pos uint64, n int) []byte {
	b := make([]byte, n)
	for i := 0; i < n; i += 8 {
		w := tx.Load(l.word(pos + uint64(i/8)))
		for j := 0; j < 8 && i+j < n; j++ {
			b[i+j] = byte(w >> (8 * uint(j)))
		}
	}
	return b
}

// Read decodes up to maxEvents records starting at monotone word offset
// from, under tx. It returns the events, the offset to resume at, and the
// oldest retained offset: when oldest > from, the ring overwrote records
// the reader had not consumed (the caller reports the gap). All loads run
// under tx, so a concurrent append that would tear the read aborts it
// instead — a returned batch is a consistent snapshot of the ring.
func (l *EventLog) Read(tx rhtm.Tx, from uint64, maxEvents int) (events []Ev, next, oldest uint64) {
	return l.ReadRange(tx, from, 0, maxEvents)
}

// ReadRange is Read bounded above by the monotone offset to (0 = the
// current head). to must be a record boundary a previous Read returned —
// the hub's replay uses it to stop exactly at its live-stream splice point.
func (l *EventLog) ReadRange(tx rhtm.Tx, from, to uint64, maxEvents int) (events []Ev, next, oldest uint64) {
	h := tx.Load(l.head)
	if to > 0 && to < h {
		h = to
	}
	t := tx.Load(l.tail)
	oldest = t
	if from < t {
		from = t
	}
	for from < h && len(events) < maxEvents {
		hdr := tx.Load(l.word(from))
		kb := int(hdr >> evKeyShift & evLenMask)
		vb := int(hdr >> evValShift & evLenMask)
		ev := Ev{
			Kind:        EvKind(hdr & evKindMask),
			Rev:         tx.Load(l.word(from + 1)),
			Key:         readRingBytes(tx, l, from+evHeaderWords, kb),
			ValueElided: hdr&evElidedBit != 0,
		}
		if vb > 0 {
			ev.Value = readRingBytes(tx, l, from+evHeaderWords+uint64((kb+7)/8), vb)
		}
		events = append(events, ev)
		from += uint64(evHeaderWords + (kb+7)/8 + (vb+7)/8)
	}
	return events, from, oldest
}

// Head returns the monotone append offset under tx — the position a reader
// starts from to see only future events.
func (l *EventLog) Head(tx rhtm.Tx) uint64 { return tx.Load(l.head) }

// Rev returns the last assigned revision under tx.
func (l *EventLog) Rev(tx rhtm.Tx) uint64 { return tx.Load(l.seq) }

// Dropped returns how many events were skipped because their key exceeded
// the ring (diagnostics).
func (l *EventLog) Dropped(tx rhtm.Tx) uint64 { return tx.Load(l.dropped) }

// Words returns the ring capacity in words.
func (l *EventLog) Words() int { return l.cap }
