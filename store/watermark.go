package store

import "sync/atomic"

// Watermarks is a lock-free per-partition vector of applied revisions — the
// replication layer's progress accounting. Each replica apply pump bumps
// its partition's entry after committing a replayed transaction, and lag
// metrics read the vector without touching the engine. It is advisory: the
// *correctness* watermark a follower read reports is the partition's
// revision clock read inside the same engine transaction as the key, which
// is what makes never-future provable. This vector only has to be monotone
// and cheap.
type Watermarks struct {
	revs []atomic.Uint64
}

// NewWatermarks builds a zeroed vector for parts partitions.
func NewWatermarks(parts int) *Watermarks {
	return &Watermarks{revs: make([]atomic.Uint64, parts)}
}

// Set raises partition part's watermark to rev (monotone: lower values are
// ignored, so racing pumps can publish out of order).
func (w *Watermarks) Set(part int, rev uint64) {
	for {
		cur := w.revs[part].Load()
		if rev <= cur || w.revs[part].CompareAndSwap(cur, rev) {
			return
		}
	}
}

// Get returns partition part's watermark.
func (w *Watermarks) Get(part int) uint64 { return w.revs[part].Load() }

// Min returns the lowest watermark across all partitions — the floor every
// partition has provably reached.
func (w *Watermarks) Min() uint64 {
	if len(w.revs) == 0 {
		return 0
	}
	min := w.revs[0].Load()
	for i := 1; i < len(w.revs); i++ {
		if v := w.revs[i].Load(); v < min {
			min = v
		}
	}
	return min
}

// Parts returns the vector length.
func (w *Watermarks) Parts() int { return len(w.revs) }
