package store

import (
	"sort"

	"rhtm"
)

// Sharded hash-partitions the key space into per-shard sub-stores on one
// System. Each shard has its own index root and arena, so structurally
// independent operations touch disjoint tree roots and allocator words —
// the contention hot spots of a single Store. Transactions spanning shards
// remain atomic: the shards share the System's conflict detection, so a
// cross-shard multi-key body commits or aborts as one unit under any
// engine.
type Sharded struct {
	shards []*Store

	// walStats, when set, snapshots the DB-level write-ahead log's
	// counters (see SetWALStats in stats.go).
	walStats func() WALStats
}

// NewSharded allocates n shards on s, each with its own Options.ArenaWords
// arena. Call during single-threaded setup.
func NewSharded(s *rhtm.System, n int, opts Options) *Sharded {
	if n <= 0 {
		n = 1
	}
	sh := &Sharded{shards: make([]*Store, n)}
	for i := range sh.shards {
		sh.shards[i] = New(s, opts)
	}
	return sh
}

// KeyHash is the 64-bit FNV-1a hash of a key, computed in plain Go: shard
// (and cluster System) routing is a pure function of the key bytes and costs
// no simulated accesses. It is deterministic across runs and processes, so
// placement decisions are stable — the cluster package's Router uses the
// same function.
func KeyHash(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// ShardIndex returns the shard a key routes to.
func (sh *Sharded) ShardIndex(key []byte) int {
	return int(KeyHash(key) % uint64(len(sh.shards)))
}

// PartitionOf is ShardIndex under the durability layer's name: each shard
// owns an independent revision clock, so the WAL's sequence gate tracks
// one cursor per shard.
func (sh *Sharded) PartitionOf(key []byte) int { return sh.ShardIndex(key) }

// System returns the simulated machine the shards share.
func (sh *Sharded) System() *rhtm.System { return sh.shards[0].sys }

// Shard returns the sub-store a key routes to (for tests and diagnostics).
func (sh *Sharded) Shard(key []byte) *Store {
	return sh.shards[sh.ShardIndex(key)]
}

// NumShards returns the shard count.
func (sh *Sharded) NumShards() int { return len(sh.shards) }

// Get returns the value stored under key.
func (sh *Sharded) Get(tx rhtm.Tx, key []byte) ([]byte, bool) {
	return sh.Shard(key).Get(tx, key)
}

// Read returns key's value, revision and lease (see Store.Read). Revisions
// are per-shard monotonic commit versions: comparable per key, not across
// shards.
func (sh *Sharded) Read(tx rhtm.Tx, key []byte) (value []byte, rev, lease uint64, ok bool) {
	return sh.Shard(key).Read(tx, key)
}

// RevOf returns key's revision (see Store.RevOf).
func (sh *Sharded) RevOf(tx rhtm.Tx, key []byte) (uint64, bool) {
	return sh.Shard(key).RevOf(tx, key)
}

// LeaseOf returns key's attached lease id (see Store.LeaseOf).
func (sh *Sharded) LeaseOf(tx rhtm.Tx, key []byte) (uint64, bool) {
	return sh.Shard(key).LeaseOf(tx, key)
}

// Has reports whether key is present.
func (sh *Sharded) Has(tx rhtm.Tx, key []byte) bool {
	return sh.Shard(key).Has(tx, key)
}

// Put stores key→value in the key's shard.
func (sh *Sharded) Put(tx rhtm.Tx, key, value []byte) error {
	return sh.Shard(key).Put(tx, key, value)
}

// PutLease stores key→value with a lease attachment in the key's shard.
func (sh *Sharded) PutLease(tx rhtm.Tx, key, value []byte, lease uint64) error {
	return sh.Shard(key).PutLease(tx, key, value, lease)
}

// PutStamped is PutLease returning the stamped revision (see
// Store.PutStamped); revisions come from the owning shard's clock.
func (sh *Sharded) PutStamped(tx rhtm.Tx, key, value []byte, lease uint64) (uint64, error) {
	return sh.Shard(key).PutStamped(tx, key, value, lease)
}

// ReplayPut applies a logged write to the owning shard (see
// Store.ReplayPut). Single-threaded recovery only.
func (sh *Sharded) ReplayPut(tx rhtm.Tx, key, value []byte, rev, lease uint64) error {
	return sh.Shard(key).ReplayPut(tx, key, value, rev, lease)
}

// Delete removes key from its shard.
func (sh *Sharded) Delete(tx rhtm.Tx, key []byte) bool {
	return sh.Shard(key).Delete(tx, key)
}

// DeleteStamped is Delete returning the consumed revision (see
// Store.DeleteStamped).
func (sh *Sharded) DeleteStamped(tx rhtm.Tx, key []byte) (uint64, bool) {
	return sh.Shard(key).DeleteStamped(tx, key)
}

// ReplayDelete applies a logged deletion to the owning shard (see
// Store.ReplayDelete). Single-threaded recovery only.
func (sh *Sharded) ReplayDelete(tx rhtm.Tx, key []byte, rev uint64) bool {
	return sh.Shard(key).ReplayDelete(tx, key, rev)
}

// EventLogs returns every shard's commit-event log (one independent
// revision clock per shard), in shard order.
func (sh *Sharded) EventLogs() []*EventLog {
	logs := make([]*EventLog, len(sh.shards))
	for i, st := range sh.shards {
		logs[i] = st.Events()
	}
	return logs
}

// Len returns the number of live entries across all shards.
func (sh *Sharded) Len(tx rhtm.Tx) int {
	n := 0
	for _, st := range sh.shards {
		n += st.Len(tx)
	}
	return n
}

// Scan visits entries with start <= key < end in ascending key order across
// all shards. Hash partitioning scatters the range over every shard, so the
// implementation collects each shard's in-range entries and merges them by
// key before visiting — the whole range is read (and therefore validated by
// the transaction) even when fn stops early.
func (sh *Sharded) Scan(tx rhtm.Tx, start, end []byte, fn func(key, value []byte) bool) {
	type pair struct{ k, v []byte }
	var all []pair
	for _, st := range sh.shards {
		st.Scan(tx, start, end, func(k, v []byte) bool {
			all = append(all, pair{k: k, v: v})
			return true
		})
	}
	sort.Slice(all, func(i, j int) bool { return string(all[i].k) < string(all[j].k) })
	for _, p := range all {
		if !fn(p.k, p.v) {
			return
		}
	}
}

// ScanLimit visits at most the first limit in-range entries (limit <= 0 is
// unbounded). Unlike Scan — which must read every shard's whole range
// before merging — each shard contributes at most limit entries, so short
// ordered reads (cursor chunks, YCSB-E scans) cost O(limit × shards)
// instead of O(range).
func (sh *Sharded) ScanLimit(tx rhtm.Tx, start, end []byte, limit int, fn func(key, value []byte) bool) {
	if limit <= 0 {
		sh.Scan(tx, start, end, fn)
		return
	}
	type pair struct{ k, v []byte }
	var all []pair
	for _, st := range sh.shards {
		n := 0
		st.Scan(tx, start, end, func(k, v []byte) bool {
			all = append(all, pair{k: k, v: v})
			n++
			return n < limit
		})
	}
	// The global first limit entries are within the union of each shard's
	// first limit entries, so the merged prefix is exact.
	sort.Slice(all, func(i, j int) bool { return string(all[i].k) < string(all[j].k) })
	if len(all) > limit {
		all = all[:limit]
	}
	for _, p := range all {
		if !fn(p.k, p.v) {
			return
		}
	}
}

// ScanMeta visits every shard's entries — metadata included (see
// Store.ScanMeta). Shards are visited in shard order, not key order:
// checkpoint serialization does not need a global sort.
func (sh *Sharded) ScanMeta(tx rhtm.Tx, fn func(key, value []byte, rev, lease uint64) bool) {
	for _, st := range sh.shards {
		stop := false
		st.ScanMeta(tx, func(k, v []byte, rev, lease uint64) bool {
			if !fn(k, v, rev, lease) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Validate checks every shard's invariants plus the DB-level WAL
// watermarks. Only call while no transactions are in flight.
func (sh *Sharded) Validate() error {
	for _, st := range sh.shards {
		if err := st.Validate(); err != nil {
			return err
		}
	}
	if sh.walStats != nil {
		if err := validateWAL(sh.walStats()); err != nil {
			return err
		}
	}
	return nil
}
