// Package store is a byte-addressed, transactional key-value store built on
// the rhtm simulated machine — the storage layer that turns the paper's
// protocol stack into something an application can grow on. Keys and values
// are arbitrary []byte, packed into 64-bit words of simulated memory by a
// varlen codec; a transactional free-list arena allocates the blocks; a
// comparator-ordered red-black tree (containers.OrderedTree) indexes them
// for Get/Put/Delete and ordered Scan.
//
// Every operation runs inside an rhtm.Tx body, so multi-key read-modify-
// write sequences compose atomically under whichever engine drives the
// transaction (RH1, RH2, TL2, the hybrids, ...). Sharded hash-partitions
// the key space into per-shard sub-stores on one System: per-shard index
// roots and arenas slash structural contention while cross-shard
// transactions stay atomic, because every engine on one System shares the
// same conflict detection.
//
//	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 20))
//	eng := rhtm.NewRH1(s, rhtm.DefaultRH1Options())
//	kv := store.NewSharded(s, 8, store.Options{})
//	th := eng.NewThread()
//	err := th.Atomic(func(tx rhtm.Tx) error {
//	    kv.Put(tx, []byte("user1"), []byte("hello"))
//	    v, _ := kv.Get(tx, []byte("user1"))
//	    return kv.Put(tx, []byte("copy"), v)
//	})
package store

import (
	"fmt"

	"rhtm"
	"rhtm/containers"
)

// entryWords is the size of a data entry record: word 0 holds the key block
// address, word 1 the value block address, word 2 the revision the last
// write stamped (the store's monotonic commit version for the key), word 3
// the attached lease id (0 = none). The tree item is the entry address, so
// replacing a value is a few stores into the entry — no tree surgery.
const entryWords = 4

// intentEntryWords is the size of an intent entry record: word 0 the key
// block address, word 1 the payload block address (see intent.go).
const intentEntryWords = 2

// DefaultArenaWords sizes a store's arena when Options.ArenaWords is zero.
const DefaultArenaWords = 1 << 16

// Options configures a Store.
type Options struct {
	// ArenaWords is the capacity, in simulated words, of the store's block
	// arena (key blocks, value blocks, entry records, and index nodes all
	// come from it). Zero selects DefaultArenaWords. For NewSharded this is
	// the per-shard capacity, so the System's heap must hold at least
	// shards*(ArenaWords+LogWords) words (plus a few lines of allocator
	// metadata) or construction panics with "heap exhausted".
	ArenaWords int
	// LogWords sizes the store's commit-event ring (see EventLog), allocated
	// from the System heap beside the arena. Zero selects DefaultLogWords.
	// For NewSharded this is per shard — every shard owns an independent
	// revision clock and event log.
	LogWords int
}

// Store is one transactional key-value store: an ordered index over varlen
// entries in a private arena. Use it inside transaction bodies; for
// single-threaded population and verification, pass containers.SetupTx(s).
type Store struct {
	sys         *rhtm.System
	arena       *Arena
	idx         *containers.OrderedTree
	intents     *containers.OrderedTree
	log         *EventLog
	count       rhtm.Addr // one word: live entry count
	intentCount rhtm.Addr // one word: pending intent count

	// walStats, when set, snapshots the attached write-ahead log's
	// counters for Stats and Validate (host-side; see SetWALStats).
	walStats func() WALStats
}

// New allocates a store on s. Call during single-threaded setup.
func New(s *rhtm.System, opts Options) *Store {
	words := opts.ArenaWords
	if words <= 0 {
		words = DefaultArenaWords
	}
	st := &Store{
		sys:         s,
		arena:       NewArena(s, words),
		log:         NewEventLog(s, opts.LogWords),
		count:       s.MustAlloc(1),
		intentCount: s.MustAlloc(1),
	}
	st.idx = containers.NewOrderedTree(s, st.compareEntry, st.arena)
	st.intents = containers.NewOrderedTree(s, st.compareEntry, st.arena)
	return st
}

// Events returns the store's revision clock and commit-event log.
func (st *Store) Events() *EventLog { return st.log }

// System returns the simulated machine the store lives on — the durability
// layer's recovery pass runs its single-threaded replay transactions there.
func (st *Store) System() *rhtm.System { return st.sys }

// PartitionOf returns the index of the revision-clock partition owning key:
// always 0 for an unsharded store. The WAL's sequence gate keys on it.
func (st *Store) PartitionOf(key []byte) int { return 0 }

// EventLogs returns the store's logs as a one-element slice — the shape the
// kv layer consumes uniformly for Store, Sharded and cluster backends.
func (st *Store) EventLogs() []*EventLog { return []*EventLog{st.log} }

// RecordFootprintWords returns the arena words one live record consumes,
// class-rounded: key block, value block, entry record, and index node.
// Workload builders use it to size arenas; keeping it here means layout
// changes (entry shape, index node size, codec header) cannot silently
// drift from the sizing math.
func RecordFootprintWords(keyBytes, valueBytes int) int {
	return 1<<classOf(blockWords(keyBytes)) +
		1<<classOf(blockWords(valueBytes)) +
		1<<classOf(entryWords) +
		1<<classOf(containers.OTNodeWords)
}

// compareEntry orders a probe key against an entry's key block.
func (st *Store) compareEntry(tx rhtm.Tx, key []byte, item uint64) int {
	return compareBytes(tx, key, rhtm.Addr(tx.Load(rhtm.Addr(item))))
}

// Get returns the value stored under key. The returned slice is a private
// copy decoded from simulated memory.
func (st *Store) Get(tx rhtm.Tx, key []byte) ([]byte, bool) {
	item, ok := st.idx.Lookup(tx, key)
	if !ok {
		return nil, false
	}
	return readBytes(tx, rhtm.Addr(tx.Load(rhtm.Addr(item)+1))), true
}

// Read returns key's value together with its revision (the store's
// monotonic commit version stamped by the last write) and attached lease id
// (0 = none).
func (st *Store) Read(tx rhtm.Tx, key []byte) (value []byte, rev, lease uint64, ok bool) {
	item, found := st.idx.Lookup(tx, key)
	if !found {
		return nil, 0, 0, false
	}
	ent := rhtm.Addr(item)
	return readBytes(tx, rhtm.Addr(tx.Load(ent+1))), tx.Load(ent + 2), tx.Load(ent + 3), true
}

// RevOf returns key's revision without decoding the value; absent keys
// report (0, false).
func (st *Store) RevOf(tx rhtm.Tx, key []byte) (uint64, bool) {
	item, ok := st.idx.Lookup(tx, key)
	if !ok {
		return 0, false
	}
	return tx.Load(rhtm.Addr(item) + 2), true
}

// LeaseOf returns key's attached lease id (0 = none; absent keys report
// (0, false)).
func (st *Store) LeaseOf(tx rhtm.Tx, key []byte) (uint64, bool) {
	item, ok := st.idx.Lookup(tx, key)
	if !ok {
		return 0, false
	}
	return tx.Load(rhtm.Addr(item) + 3), true
}

// Has reports whether key is present without decoding the value.
func (st *Store) Has(tx rhtm.Tx, key []byte) bool {
	_, ok := st.idx.Lookup(tx, key)
	return ok
}

// Put stores key→value, overwriting any existing value and detaching any
// lease (lease id 0). When the new value packs into the same size class as
// the old one it is rewritten in place; otherwise a new block is allocated
// and the old one freed — both under tx, so an abort rolls the swap back.
// Every successful put stamps a fresh revision and appends an EvPut to the
// store's event log. The only error is arena exhaustion.
func (st *Store) Put(tx rhtm.Tx, key, value []byte) error {
	_, err := st.putWith(tx, key, value, rhtm.NilAddr, 0, 0)
	return err
}

// PutLease is Put with a lease attachment: the entry's lease word is set to
// lease (0 detaches), so a later lease revoke can tell whether the key
// still belongs to it.
func (st *Store) PutLease(tx rhtm.Tx, key, value []byte, lease uint64) error {
	_, err := st.putWith(tx, key, value, rhtm.NilAddr, lease, 0)
	return err
}

// PutStamped is PutLease returning the revision the write stamped — the
// durability layer logs (key, value, lease, rev) so replay can restore the
// exact commit version.
func (st *Store) PutStamped(tx rhtm.Tx, key, value []byte, lease uint64) (uint64, error) {
	return st.putWith(tx, key, value, rhtm.NilAddr, lease, 0)
}

// ReplayPut is the recovery-path put: it applies a logged write with its
// original revision instead of minting a fresh one, and advances the
// store's revision clock to at least rev, so post-recovery writes continue
// the same monotone sequence and watch streams resume at the recovered
// revision. Single-threaded recovery only.
func (st *Store) ReplayPut(tx rhtm.Tx, key, value []byte, rev, lease uint64) error {
	_, err := st.putWith(tx, key, value, rhtm.NilAddr, lease, rev)
	return err
}

// putWith is Put with an optional pre-allocated value block (reserved !=
// NilAddr, sized blockWords(len(value))): the intent apply path passes the
// block PrepareIntent reserved so that a decided transaction's store cannot
// fail on arena exhaustion. When the rewrite lands in place the reservation
// is returned to the arena. rev 0 mints a fresh revision from the store's
// clock; nonzero replays a logged one (recovery). Returns the revision
// stamped.
func (st *Store) putWith(tx rhtm.Tx, key, value []byte, reserved rhtm.Addr, lease uint64, rev uint64) (uint64, error) {
	newWords := blockWords(len(value))
	takeValueBlock := func() (rhtm.Addr, error) {
		if reserved != rhtm.NilAddr {
			return reserved, nil
		}
		return st.arena.TxAlloc(tx, newWords)
	}
	stamp := func(ent rhtm.Addr) uint64 {
		r := rev
		if r == 0 {
			r = st.log.NextRev(tx)
		} else {
			st.log.AdvanceTo(tx, r)
		}
		tx.Store(ent+2, r)
		tx.Store(ent+3, lease)
		st.log.Append(tx, EvPut, key, value, r)
		return r
	}
	if item, ok := st.idx.Lookup(tx, key); ok {
		ent := rhtm.Addr(item)
		valCell := ent + 1
		old := rhtm.Addr(tx.Load(valCell))
		oldWords := blockWords(int(tx.Load(old)))
		if classOf(newWords) == classOf(oldWords) {
			writeBytes(tx, old, value)
			if reserved != rhtm.NilAddr {
				st.arena.TxFree(tx, reserved, newWords)
			}
			return stamp(ent), nil
		}
		nv, err := takeValueBlock()
		if err != nil {
			return 0, err
		}
		writeBytes(tx, nv, value)
		tx.Store(valCell, uint64(nv))
		st.arena.TxFree(tx, old, oldWords)
		return stamp(ent), nil
	}
	kb, err := st.arena.TxAlloc(tx, blockWords(len(key)))
	if err != nil {
		return 0, err
	}
	vb, err := takeValueBlock()
	if err != nil {
		return 0, err
	}
	ent, err := st.arena.TxAlloc(tx, entryWords)
	if err != nil {
		return 0, err
	}
	writeBytes(tx, kb, key)
	writeBytes(tx, vb, value)
	tx.Store(ent, uint64(kb))
	tx.Store(ent+1, uint64(vb))
	if _, _, err := st.idx.Insert(tx, key, uint64(ent)); err != nil {
		return 0, err
	}
	tx.Store(st.count, tx.Load(st.count)+1)
	return stamp(ent), nil
}

// Delete removes key, returning whether it was present. The entry's key
// block, value block, entry record, and index node all return to the arena
// under tx; a successful delete consumes a revision and appends an EvDelete
// to the event log.
func (st *Store) Delete(tx rhtm.Tx, key []byte) bool {
	_, ok := st.deleteWith(tx, key, 0)
	return ok
}

// DeleteStamped is Delete returning the revision the removal consumed
// (0 when the key was absent) — what the durability layer logs.
func (st *Store) DeleteStamped(tx rhtm.Tx, key []byte) (uint64, bool) {
	return st.deleteWith(tx, key, 0)
}

// ReplayDelete is the recovery-path delete: it stamps the logged revision
// instead of minting one and advances the revision clock to at least rev
// even when the key is already absent (the deletion consumed that revision
// before the crash). Single-threaded recovery only.
func (st *Store) ReplayDelete(tx rhtm.Tx, key []byte, rev uint64) bool {
	_, ok := st.deleteWith(tx, key, rev)
	if !ok {
		st.log.AdvanceTo(tx, rev)
	}
	return ok
}

// deleteWith implements Delete; rev 0 mints a fresh revision, nonzero
// replays a logged one.
func (st *Store) deleteWith(tx rhtm.Tx, key []byte, rev uint64) (uint64, bool) {
	item, ok := st.idx.Delete(tx, key)
	if !ok {
		return 0, false
	}
	ent := rhtm.Addr(item)
	kb := rhtm.Addr(tx.Load(ent))
	vb := rhtm.Addr(tx.Load(ent + 1))
	st.arena.TxFree(tx, kb, blockWords(int(tx.Load(kb))))
	st.arena.TxFree(tx, vb, blockWords(int(tx.Load(vb))))
	st.arena.TxFree(tx, ent, entryWords)
	tx.Store(st.count, tx.Load(st.count)-1)
	r := rev
	if r == 0 {
		r = st.log.NextRev(tx)
	} else {
		st.log.AdvanceTo(tx, r)
	}
	st.log.Append(tx, EvDelete, key, nil, r)
	return r, true
}

// Scan visits entries with start <= key < end in ascending key order,
// passing decoded copies of key and value; nil bounds are unbounded.
// Visiting stops early when fn returns false.
func (st *Store) Scan(tx rhtm.Tx, start, end []byte, fn func(key, value []byte) bool) {
	st.ScanRev(tx, start, end, func(k, v []byte, _ uint64) bool { return fn(k, v) })
}

// ScanRev is Scan with each entry's revision included — range readers that
// validate by revision (the cluster's snapshot scans) use it to avoid
// re-decoding values.
func (st *Store) ScanRev(tx rhtm.Tx, start, end []byte, fn func(key, value []byte, rev uint64) bool) {
	st.idx.Scan(tx, start, end, func(item uint64) bool {
		ent := rhtm.Addr(item)
		k := readBytes(tx, rhtm.Addr(tx.Load(ent)))
		v := readBytes(tx, rhtm.Addr(tx.Load(ent+1)))
		return fn(k, v, tx.Load(ent+2))
	})
}

// ScanLimit is Scan bounded to the first limit entries (limit <= 0 is
// unbounded). On a single Store it is sugar; on Sharded it is the cheap
// form — see Sharded.ScanLimit.
func (st *Store) ScanLimit(tx rhtm.Tx, start, end []byte, limit int, fn func(key, value []byte) bool) {
	st.ScanLimitRev(tx, start, end, limit, func(k, v []byte, _ uint64) bool { return fn(k, v) })
}

// ScanMeta visits every entry — metadata included: revision and lease —
// in ascending key order. Checkpoints use it to serialize the full durable
// state (lease records live in the same index, so they ride along).
func (st *Store) ScanMeta(tx rhtm.Tx, fn func(key, value []byte, rev, lease uint64) bool) {
	st.idx.Scan(tx, nil, nil, func(item uint64) bool {
		ent := rhtm.Addr(item)
		k := readBytes(tx, rhtm.Addr(tx.Load(ent)))
		v := readBytes(tx, rhtm.Addr(tx.Load(ent+1)))
		return fn(k, v, tx.Load(ent+2), tx.Load(ent+3))
	})
}

// ScanLimitRev is ScanRev bounded to the first limit entries.
func (st *Store) ScanLimitRev(tx rhtm.Tx, start, end []byte, limit int, fn func(key, value []byte, rev uint64) bool) {
	n := 0
	st.ScanRev(tx, start, end, func(k, v []byte, rev uint64) bool {
		n++
		if !fn(k, v, rev) {
			return false
		}
		return limit <= 0 || n < limit
	})
}

// Len returns the number of live entries.
func (st *Store) Len(tx rhtm.Tx) int {
	return int(tx.Load(st.count))
}

// Arena exposes the store's allocator for diagnostics and capacity tests.
func (st *Store) Arena() *Arena { return st.arena }

// Validate checks both indexes' structural invariants plus the count words
// against full traversals, using raw memory access. Only call while no
// transactions are in flight.
func (st *Store) Validate() error {
	if err := st.idx.Validate(); err != nil {
		return err
	}
	if err := st.intents.Validate(); err != nil {
		return err
	}
	tx := containers.SetupTx(st.sys)
	if n := st.idx.Len(tx); n != st.Len(tx) {
		return fmt.Errorf("store: count word %d != %d traversed entries", st.Len(tx), n)
	}
	if n := st.intents.Len(tx); n != st.PendingIntents(tx) {
		return fmt.Errorf("store: intent count word %d != %d traversed intents",
			st.PendingIntents(tx), n)
	}
	if walked, counted := st.arena.walkFreeWords(tx), st.arena.Stats(tx).FreeListWords; walked != counted {
		return fmt.Errorf("store: free-list counters say %d free words, walk finds %d",
			counted, walked)
	}
	if st.walStats != nil {
		if err := validateWAL(st.walStats()); err != nil {
			return err
		}
	}
	return nil
}
