package store

import (
	"fmt"

	"rhtm"
)

// Stats aggregates a store's transactional counters: live entries, pending
// intents, arena occupancy, and — when a write-ahead log is attached — the
// durability counters. The harness reports it after each KV run so arena
// size-class waste (LiveWords versus the payload actually stored) and WAL
// amortization (transactions per sync) are measurable per workload.
type Stats struct {
	// LiveKeys is the number of live entries.
	LiveKeys int
	// PendingIntents is the number of keys with an installed intent.
	PendingIntents int
	// Arena is the occupancy of the store's allocator (summed across
	// shards for Sharded).
	Arena ArenaStats
	// WAL holds the attached write-ahead log's counters (zero when the
	// store runs volatile). Filled by the provider set with SetWALStats.
	WAL WALStats
}

// WALStats mirrors the durability layer's counters into the store's stats
// surface: frames and bytes appended, transactions logged, sync barriers,
// and the durable / checkpoint LSN watermarks. CheckpointLSN can never
// exceed DurableLSN (a checkpoint syncs before it returns) — Validate
// cross-checks exactly that.
type WALStats struct {
	FramesAppended, BytesAppended, TxnsLogged, Syncs uint64
	DurableLSN, CheckpointLSN                        uint64
}

// Add accumulates other into w (per-System aggregation on the cluster).
// Watermarks take the maximum — they are per-stream positions, not counts.
func (w *WALStats) Add(other WALStats) {
	w.FramesAppended += other.FramesAppended
	w.BytesAppended += other.BytesAppended
	w.TxnsLogged += other.TxnsLogged
	w.Syncs += other.Syncs
	if other.DurableLSN > w.DurableLSN {
		w.DurableLSN = other.DurableLSN
	}
	if other.CheckpointLSN > w.CheckpointLSN {
		w.CheckpointLSN = other.CheckpointLSN
	}
}

// Add accumulates other into s (per-shard and per-System aggregation).
func (s *Stats) Add(other Stats) {
	s.LiveKeys += other.LiveKeys
	s.PendingIntents += other.PendingIntents
	s.Arena.CapacityWords += other.Arena.CapacityWords
	s.Arena.BumpedWords += other.Arena.BumpedWords
	s.Arena.FreeListWords += other.Arena.FreeListWords
	s.Arena.LiveWords += other.Arena.LiveWords
	s.WAL.Add(other.WAL)
}

// String renders a compact one-line summary for harness notes.
func (s Stats) String() string {
	out := fmt.Sprintf("keys=%d intents=%d arena[cap=%d bumped=%d free=%d live=%d]",
		s.LiveKeys, s.PendingIntents, s.Arena.CapacityWords,
		s.Arena.BumpedWords, s.Arena.FreeListWords, s.Arena.LiveWords)
	if s.WAL.TxnsLogged > 0 || s.WAL.Syncs > 0 {
		out += fmt.Sprintf(" wal[txns=%d frames=%d bytes=%d syncs=%d durable-lsn=%d ckpt-lsn=%d]",
			s.WAL.TxnsLogged, s.WAL.FramesAppended, s.WAL.BytesAppended,
			s.WAL.Syncs, s.WAL.DurableLSN, s.WAL.CheckpointLSN)
	}
	return out
}

// SetWALStats attaches the durability counters' provider — the kv layer's
// Open paths call it with an adapter over the log writer. Stats includes
// the provider's snapshot; Validate cross-checks its watermarks.
func (st *Store) SetWALStats(fn func() WALStats) { st.walStats = fn }

// SetWALStats attaches the provider on a sharded store (the log is per DB,
// not per shard, so it hangs off the top-level Sharded).
func (sh *Sharded) SetWALStats(fn func() WALStats) { sh.walStats = fn }

// Stats gathers the store's counters under tx. Every field is an O(1)
// snapshot of an incrementally maintained counter (the arena's free-word
// totals included — see Arena.Stats), so it is safe to poll from running
// workloads, not just from quiescent reporting paths.
func (st *Store) Stats(tx rhtm.Tx) Stats {
	out := Stats{
		LiveKeys:       st.Len(tx),
		PendingIntents: st.PendingIntents(tx),
		Arena:          st.arena.Stats(tx),
	}
	if st.walStats != nil {
		out.WAL = st.walStats()
	}
	return out
}

// Stats sums every shard's counters plus the DB-level WAL counters.
func (sh *Sharded) Stats(tx rhtm.Tx) Stats {
	var out Stats
	for _, st := range sh.shards {
		out.Add(st.Stats(tx))
	}
	if sh.walStats != nil {
		out.WAL.Add(sh.walStats())
	}
	return out
}

// validateWAL cross-checks a WAL stats snapshot: the checkpoint watermark
// can never pass the durable one.
func validateWAL(s WALStats) error {
	if s.CheckpointLSN > s.DurableLSN {
		return fmt.Errorf("store: checkpoint LSN %d beyond durable LSN %d",
			s.CheckpointLSN, s.DurableLSN)
	}
	return nil
}
