package store

import (
	"fmt"

	"rhtm"
)

// Stats aggregates a store's transactional counters: live entries, pending
// intents, and arena occupancy. The harness reports it after each KV run so
// arena size-class waste (LiveWords versus the payload actually stored) is
// measurable per workload.
type Stats struct {
	// LiveKeys is the number of live entries.
	LiveKeys int
	// PendingIntents is the number of keys with an installed intent.
	PendingIntents int
	// Arena is the occupancy of the store's allocator (summed across
	// shards for Sharded).
	Arena ArenaStats
}

// Add accumulates other into s (per-shard and per-System aggregation).
func (s *Stats) Add(other Stats) {
	s.LiveKeys += other.LiveKeys
	s.PendingIntents += other.PendingIntents
	s.Arena.CapacityWords += other.Arena.CapacityWords
	s.Arena.BumpedWords += other.Arena.BumpedWords
	s.Arena.FreeListWords += other.Arena.FreeListWords
	s.Arena.LiveWords += other.Arena.LiveWords
}

// String renders a compact one-line summary for harness notes.
func (s Stats) String() string {
	return fmt.Sprintf("keys=%d intents=%d arena[cap=%d bumped=%d free=%d live=%d]",
		s.LiveKeys, s.PendingIntents, s.Arena.CapacityWords,
		s.Arena.BumpedWords, s.Arena.FreeListWords, s.Arena.LiveWords)
}

// Stats gathers the store's counters under tx. Every field is an O(1)
// snapshot of an incrementally maintained counter (the arena's free-word
// totals included — see Arena.Stats), so it is safe to poll from running
// workloads, not just from quiescent reporting paths.
func (st *Store) Stats(tx rhtm.Tx) Stats {
	return Stats{
		LiveKeys:       st.Len(tx),
		PendingIntents: st.PendingIntents(tx),
		Arena:          st.arena.Stats(tx),
	}
}

// Stats sums every shard's counters.
func (sh *Sharded) Stats(tx rhtm.Tx) Stats {
	var out Stats
	for _, st := range sh.shards {
		out.Add(st.Stats(tx))
	}
	return out
}
