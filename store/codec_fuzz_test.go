package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"rhtm"
	"rhtm/containers"
)

// The varlen codec (codec.go) is the boundary where []byte keys and values
// become simulated words; FuzzCodecRoundTrip hammers it with arbitrary
// payloads and the golden tests pin the exact encodings at the size-class
// boundaries, where an off-by-one in blockWords/classOf silently corrupts
// or over-allocates.

// codecSys builds a System just big enough to encode n payload bytes.
func codecSys(n int) (*rhtm.System, rhtm.Addr) {
	words := blockWords(n)
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(words + 64))
	return s, s.MustAlloc(words)
}

func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(""))
	f.Add([]byte("a"))
	f.Add([]byte("exactly8"))
	f.Add([]byte("nine byte"))
	f.Add(bytes.Repeat([]byte{0xff}, 55))
	f.Add(bytes.Repeat([]byte{0x00}, 56))
	f.Add(bytes.Repeat([]byte{0x7f}, 57))
	f.Add([]byte("\x00leading nul"))
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > 1<<12 {
			b = b[:1<<12]
		}
		s, a := codecSys(len(b))
		tx := containers.SetupTx(s)
		writeBytes(tx, a, b)
		got := readBytes(tx, a)
		if !bytes.Equal(got, b) {
			t.Fatalf("round trip: wrote %x, read %x", b, got)
		}
		// compareBytes must agree with bytes.Compare for the identical key,
		// a mutated first byte, a truncation, and an extension.
		probes := [][]byte{append([]byte(nil), b...)}
		if len(b) > 0 {
			mut := append([]byte(nil), b...)
			mut[0] ^= 0x01
			probes = append(probes, mut, b[:len(b)/2])
		}
		probes = append(probes, append(append([]byte(nil), b...), 0x00))
		for _, p := range probes {
			want := sign(bytes.Compare(p, b))
			if got := sign(compareBytes(tx, p, a)); got != want {
				t.Fatalf("compareBytes(%x, %x) = %d, want %d", p, b, got, want)
			}
		}
	})
}

func sign(v int) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	default:
		return 0
	}
}

// TestCodecGoldenVectors pins the exact word-level encoding at the
// word-packing boundaries: length word first, payload packed little-endian
// eight bytes per word, last word zero-padded.
func TestCodecGoldenVectors(t *testing.T) {
	cases := []struct {
		payload []byte
		words   []uint64 // expected block contents, length word included
	}{
		{nil, []uint64{0}},
		{[]byte{0xab}, []uint64{1, 0xab}},
		{[]byte("8bytes!!"), []uint64{8, 0x2121736574796238}},
		{[]byte("9 bytes!!"), []uint64{9, 0x2173657479622039, 0x21}},
		{bytes.Repeat([]byte{0xff}, 16), []uint64{16, ^uint64(0), ^uint64(0)}},
	}
	for _, c := range cases {
		s, a := codecSys(len(c.payload))
		tx := containers.SetupTx(s)
		writeBytes(tx, a, c.payload)
		if got := blockWords(len(c.payload)); got != len(c.words) {
			t.Fatalf("%q: blockWords = %d, want %d", c.payload, got, len(c.words))
		}
		for i, want := range c.words {
			if got := s.Peek(a + rhtm.Addr(i)); got != want {
				t.Fatalf("%q word %d = %#x, want %#x", c.payload, i, got, want)
			}
		}
	}
	// Size-class boundaries: a block of exactly 1<<c words stays in class c;
	// one more word moves up a class (doubling the allocation).
	for _, c := range []int{1, 2, 3, 4, 8} {
		if got := classOf(1 << c); got != c {
			t.Fatalf("classOf(%d) = %d, want %d", 1<<c, got, c)
		}
		if got := classOf(1<<c + 1); got != c+1 {
			t.Fatalf("classOf(%d) = %d, want %d", 1<<c+1, got, c+1)
		}
	}
}

// TestCodecTooLargeEdge pins the ErrTooLarge boundary exactly: the largest
// class is 1<<(numClasses-1) words, so the largest encodable payload is
// (1<<(numClasses-1) - 1) * 8 bytes; one byte more must fail with
// ErrTooLarge (and not ErrArenaFull, which would suggest retrying could
// help).
func TestCodecTooLargeEdge(t *testing.T) {
	maxWords := 1 << (numClasses - 1)
	maxPayload := (maxWords - 1) * 8
	if got := blockWords(maxPayload); got != maxWords {
		t.Fatalf("blockWords(max) = %d, want %d", got, maxWords)
	}
	if got := blockWords(maxPayload + 1); got != maxWords+1 {
		t.Fatalf("blockWords(max+1) = %d, want %d", got, maxWords+1)
	}

	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
	arena := NewArena(s, 1<<16+64)
	tx := containers.SetupTx(s)
	if _, err := arena.TxAlloc(tx, blockWords(maxPayload)); err != nil {
		t.Fatalf("largest-class alloc refused: %v", err)
	}
	_, err := arena.TxAlloc(tx, blockWords(maxPayload+1))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over-max alloc err = %v, want ErrTooLarge", err)
	}
	if errors.Is(err, ErrArenaFull) {
		t.Fatal("over-max alloc also matches ErrArenaFull")
	}

	// The same boundary surfaces through the store's Put, wrapped so
	// errors.Is works end to end.
	st := New(s, Options{ArenaWords: 1 << 10})
	if err := st.Put(tx, []byte("k"), make([]byte, maxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("store Put over-max err = %v, want ErrTooLarge", err)
	}
	if msg := fmt.Sprint(err); msg == "" {
		t.Fatal("empty error message")
	}
}
