package store

import (
	"sync"
	"testing"
)

// TestWatermarksMonotone: Set never lowers an entry, Min is the floor, and
// racing publishers keep the vector consistent.
func TestWatermarksMonotone(t *testing.T) {
	w := NewWatermarks(3)
	w.Set(0, 5)
	w.Set(0, 3) // ignored
	if got := w.Get(0); got != 5 {
		t.Fatalf("Get(0) = %d, want 5", got)
	}
	if got := w.Min(); got != 0 {
		t.Fatalf("Min = %d, want 0 (untouched partitions)", got)
	}
	w.Set(1, 7)
	w.Set(2, 6)
	if got := w.Min(); got != 5 {
		t.Fatalf("Min = %d, want 5", got)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rev := uint64(1); rev <= 1000; rev++ {
				w.Set(0, rev)
			}
		}(g)
	}
	wg.Wait()
	if got := w.Get(0); got != 1000 {
		t.Fatalf("after racing publishers Get(0) = %d, want 1000", got)
	}
}
