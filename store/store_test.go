package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rhtm"
	"rhtm/containers"
)

func newSys(words int) *rhtm.System {
	return rhtm.MustNewSystem(rhtm.DefaultConfig(words))
}

// --- codec ---

func TestCodecRoundTrip(t *testing.T) {
	s := newSys(1 << 14)
	tx := containers.SetupTx(s)
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 300} {
		b := make([]byte, n)
		rng.Read(b)
		a := s.MustAlloc(blockWords(n))
		writeBytes(tx, a, b)
		got := readBytes(tx, a)
		if !bytes.Equal(got, b) {
			t.Fatalf("len %d: round trip mismatch", n)
		}
		if c := compareBytes(tx, b, a); c != 0 {
			t.Fatalf("len %d: compareBytes(self) = %d", n, c)
		}
	}
}

func TestCodecCompare(t *testing.T) {
	s := newSys(1 << 14)
	tx := containers.SetupTx(s)
	stored := [][]byte{
		{}, []byte("a"), []byte("ab"), []byte("abc"), []byte("b"),
		{0x00}, {0x00, 0x00}, {0xff, 0x01}, []byte("same-prefix-xxxxxxxxxx1"),
	}
	probes := append([][]byte{[]byte("aa"), []byte("abd"), []byte("same-prefix-xxxxxxxxxx2"), {0xff}}, stored...)
	for _, sv := range stored {
		a := s.MustAlloc(blockWords(len(sv)))
		writeBytes(tx, a, sv)
		for _, p := range probes {
			want := bytes.Compare(p, sv)
			if got := compareBytes(tx, p, a); got != want {
				t.Fatalf("compare(%q, %q) = %d, want %d", p, sv, got, want)
			}
		}
	}
}

// --- arena ---

func TestArenaClassReuse(t *testing.T) {
	s := newSys(1 << 14)
	a := NewArena(s, 1024)
	tx := containers.SetupTx(s)
	b1, err := a.TxAlloc(tx, 5) // class 8
	if err != nil {
		t.Fatal(err)
	}
	a.TxFree(tx, b1, 5)
	b2, err := a.TxAlloc(tx, 7) // same class: must reuse b1
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b1 {
		t.Fatalf("same-class alloc after free returned %d, want reused %d", b2, b1)
	}
	b3, err := a.TxAlloc(tx, 9) // class 16: fresh block
	if err != nil {
		t.Fatal(err)
	}
	if b3 == b1 {
		t.Fatalf("different-class alloc reused freed block")
	}
	if got := a.BumpedWords(); got != 8+16 {
		t.Fatalf("BumpedWords = %d, want %d", got, 8+16)
	}
}

func TestArenaExhaustion(t *testing.T) {
	s := newSys(1 << 14)
	a := NewArena(s, 16)
	tx := containers.SetupTx(s)
	if _, err := a.TxAlloc(tx, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := a.TxAlloc(tx, 1); err != ErrArenaFull {
		t.Fatalf("err = %v, want ErrArenaFull", err)
	}
	if _, err := a.TxAlloc(tx, 1<<20); err == ErrArenaFull || err == nil {
		t.Fatalf("oversized alloc err = %v, want class-bound error", err)
	}
}

// TestArenaAbortRollback: an aborted transaction's allocations must roll
// back — the bump pointer and free lists are simulated words, so the
// engine's undo covers them.
func TestArenaAbortRollback(t *testing.T) {
	s := newSys(1 << 14)
	a := NewArena(s, 1024)
	eng := rhtm.NewTL2(s)
	th := eng.NewThread()
	before := a.BumpedWords()
	sentinel := fmt.Errorf("user abort")
	err := th.Atomic(func(tx rhtm.Tx) error {
		if _, err := a.TxAlloc(tx, 64); err != nil {
			return err
		}
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got := a.BumpedWords(); got != before {
		t.Fatalf("aborted alloc moved the bump pointer: %d -> %d", before, got)
	}
}

// TestArenaStatsCountersMatchWalk: Stats reads incrementally maintained
// per-class free-word counters (O(1)); they must agree with a full
// free-list traversal after arbitrary alloc/free churn, including aborted
// transactions (whose counter updates must roll back with the lists).
func TestArenaStatsCountersMatchWalk(t *testing.T) {
	s := newSys(1 << 15)
	a := NewArena(s, 4096)
	eng := rhtm.NewTL2(s)
	th := eng.NewThread()
	rng := rand.New(rand.NewSource(9))
	var live []struct {
		addr  rhtm.Addr
		words int
	}
	sentinel := fmt.Errorf("abort")
	for i := 0; i < 200; i++ {
		abort := rng.Intn(5) == 0
		err := th.Atomic(func(tx rhtm.Tx) error {
			if len(live) > 0 && rng.Intn(2) == 0 {
				b := live[len(live)-1]
				a.TxFree(tx, b.addr, b.words)
				if !abort {
					live = live[:len(live)-1]
				}
			} else {
				w := rng.Intn(40) + 1
				addr, err := a.TxAlloc(tx, w)
				if err != nil {
					return err
				}
				if !abort {
					live = append(live, struct {
						addr  rhtm.Addr
						words int
					}{addr, w})
				}
			}
			if abort {
				return sentinel
			}
			return nil
		})
		if err != nil && err != sentinel {
			t.Fatal(err)
		}
	}
	tx := containers.SetupTx(s)
	st := a.Stats(tx)
	if walked := a.walkFreeWords(tx); walked != st.FreeListWords {
		t.Fatalf("counters say %d free words, walk finds %d", st.FreeListWords, walked)
	}
	if st.LiveWords != st.BumpedWords-st.FreeListWords {
		t.Fatalf("live %d != bumped %d - free %d", st.LiveWords, st.BumpedWords, st.FreeListWords)
	}
}

// --- Store ---

func TestStorePutGetDeleteScan(t *testing.T) {
	s := newSys(1 << 18)
	st := New(s, Options{ArenaWords: 1 << 15})
	tx := containers.SetupTx(s)
	oracle := map[string][]byte{}
	rng := rand.New(rand.NewSource(2))
	for op := 0; op < 3000; op++ {
		key := []byte(fmt.Sprintf("k%03d", rng.Intn(120)))
		switch rng.Intn(4) {
		case 0, 1:
			val := make([]byte, rng.Intn(50))
			rng.Read(val)
			if err := st.Put(tx, key, val); err != nil {
				t.Fatalf("op %d: Put: %v", op, err)
			}
			oracle[string(key)] = val
		case 2:
			got := st.Delete(tx, key)
			_, want := oracle[string(key)]
			if got != want {
				t.Fatalf("op %d: Delete(%s) = %v, want %v", op, key, got, want)
			}
			delete(oracle, string(key))
		default:
			got, ok := st.Get(tx, key)
			want, wok := oracle[string(key)]
			if ok != wok || !bytes.Equal(got, want) {
				t.Fatalf("op %d: Get(%s) = %x,%v want %x,%v", op, key, got, ok, want, wok)
			}
		}
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := st.Len(tx); got != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", got, len(oracle))
	}
	// Full scan must be sorted and match the oracle.
	var keys []string
	st.Scan(tx, nil, nil, func(k, v []byte) bool {
		keys = append(keys, string(k))
		if want := oracle[string(k)]; !bytes.Equal(v, want) {
			t.Fatalf("scan %s: value %x, want %x", k, v, want)
		}
		return true
	})
	if !sort.StringsAreSorted(keys) {
		t.Fatal("scan keys not sorted")
	}
	if len(keys) != len(oracle) {
		t.Fatalf("scan visited %d keys, oracle %d", len(keys), len(oracle))
	}
}

func TestStoreScanRange(t *testing.T) {
	s := newSys(1 << 16)
	st := New(s, Options{ArenaWords: 1 << 14})
	tx := containers.SetupTx(s)
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("key%02d", i*2))
		if err := st.Put(tx, key, []byte(fmt.Sprintf("v%d", i*2))); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	st.Scan(tx, []byte("key10"), []byte("key20"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"key10", "key12", "key14", "key16", "key18"}
	if len(got) != len(want) {
		t.Fatalf("range scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range scan = %v, want %v", got, want)
		}
	}
	// Early stop after 3 entries.
	n := 0
	st.Scan(tx, nil, nil, func(k, v []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early-stop scan visited %d, want 3", n)
	}
}

// TestStoreSteadyStateReuse: overwrite and delete/reinsert cycles must not
// grow the arena once the free lists are primed — the allocator really
// recycles.
func TestStoreSteadyStateReuse(t *testing.T) {
	s := newSys(1 << 18)
	st := New(s, Options{ArenaWords: 1 << 14})
	tx := containers.SetupTx(s)
	key := []byte("cycling-key")
	val := make([]byte, 40)
	for i := 0; i < 5; i++ {
		if err := st.Put(tx, key, val); err != nil {
			t.Fatal(err)
		}
		st.Delete(tx, key)
	}
	after5 := st.Arena().BumpedWords()
	for i := 0; i < 200; i++ {
		if err := st.Put(tx, key, val); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			st.Delete(tx, key)
		}
	}
	if got := st.Arena().BumpedWords(); got != after5 {
		t.Fatalf("arena grew under steady-state churn: %d -> %d words", after5, got)
	}
}

// --- Sharded ---

func TestShardedBasicsAndMergedScan(t *testing.T) {
	s := newSys(1 << 18)
	sh := NewSharded(s, 4, Options{ArenaWords: 1 << 13})
	tx := containers.SetupTx(s)
	oracle := map[string]string{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("user%04d", i)
		v := fmt.Sprintf("value-%d", i)
		if err := sh.Put(tx, []byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		oracle[k] = v
	}
	if got := sh.Len(tx); got != len(oracle) {
		t.Fatalf("Len = %d, want %d", got, len(oracle))
	}
	// Keys must actually spread across shards.
	used := map[int]bool{}
	for k := range oracle {
		used[sh.ShardIndex([]byte(k))] = true
	}
	if len(used) != sh.NumShards() {
		t.Fatalf("keys landed on %d of %d shards", len(used), sh.NumShards())
	}
	// Merged scan is globally sorted despite hash partitioning.
	var keys []string
	sh.Scan(tx, []byte("user0050"), []byte("user0100"), func(k, v []byte) bool {
		keys = append(keys, string(k))
		if oracle[string(k)] != string(v) {
			t.Fatalf("scan %s: value %q, want %q", k, v, oracle[string(k)])
		}
		return true
	})
	if len(keys) != 50 {
		t.Fatalf("range scan visited %d keys, want 50", len(keys))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("merged scan keys not sorted")
	}
	if err := sh.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The cross-engine conformance battery (enginetest.RunDB) runs from the kv
// package's tests against both this store and the cluster — importing it
// here would cycle through kv.

// TestCrossShardAtomicity moves a key-value pair between two keys pinned to
// different shards while auditors verify it lives in exactly one place.
func TestCrossShardAtomicity(t *testing.T) {
	s := newSys(1 << 17)
	sh := NewSharded(s, 4, Options{ArenaWords: 1 << 13})
	eng := rhtm.NewRH1(s, rhtm.DefaultRH1Options())

	// Find two keys routed to different shards.
	keyA := []byte("home-0")
	var keyB []byte
	for i := 0; ; i++ {
		keyB = []byte(fmt.Sprintf("away-%d", i))
		if sh.ShardIndex(keyB) != sh.ShardIndex(keyA) {
			break
		}
	}
	payload := []byte("the-one-true-value")
	tx := containers.SetupTx(s)
	if err := sh.Put(tx, keyA, payload); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		th := eng.NewThread()
		for i := 0; i < 120; i++ {
			src, dst := keyA, keyB
			if i%2 == 1 {
				src, dst = keyB, keyA
			}
			if err := th.Atomic(func(tx rhtm.Tx) error {
				v, ok := sh.Get(tx, src)
				if !ok {
					return fmt.Errorf("iteration %d: %s missing", i, src)
				}
				sh.Delete(tx, src)
				return sh.Put(tx, dst, v)
			}); err != nil {
				t.Errorf("move: %v", err)
				return
			}
		}
	}()
	th := eng.NewThread()
	for i := 0; i < 400; i++ {
		if err := th.Atomic(func(tx rhtm.Tx) error {
			_, inA := sh.Get(tx, keyA)
			vB, inB := sh.Get(tx, keyB)
			if inA == inB {
				return fmt.Errorf("audit %d: inA=%v inB=%v", i, inA, inB)
			}
			if inB && !bytes.Equal(vB, payload) {
				return fmt.Errorf("audit %d: payload corrupted: %q", i, vB)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if err := sh.Validate(); err != nil {
		t.Fatal(err)
	}
}
