package store

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rhtm"
	"rhtm/containers"
)

// Write intents are the store-level half of the cluster package's two-phase
// commit: a prepared cross-System transaction installs one intent record per
// touched key in that key's System, and the coordinator's decision later
// applies or discards them. An intent is an exclusive per-key reservation —
// while one is pending, the key's committed value cannot change (every
// conforming accessor checks IntentOn / PrepareIntent first), which is what
// keeps a validated read valid between prepare and decision.
//
// Intent records live in a second ordered index on the store's own arena,
// sharing the entry layout of data records: word 0 the key block, word 1 the
// payload block. The payload encodes the owning transaction id, the buffered
// operation, and (for a put) the buffered value:
//
//	byte 0..7   txid, little-endian (word 1 of the payload block, so
//	            IntentOn costs a single data load beyond the index walk)
//	byte 8      kind (IntentRead / IntentPut / IntentDelete)
//	byte 9..16  reserved value-block address (IntentPut only; 0 otherwise)
//	byte 17..   value bytes (IntentPut only)
//
// A put intent pre-allocates the value block its apply will install (the
// reserved address above), so that once a transaction is decided, applying
// it cannot fail on arena exhaustion: every other block the apply needs —
// key block, entry record, index node — is the same size class as one the
// intent teardown itself frees moments earlier in the same transaction, so
// the free lists are guaranteed to serve them. Capacity errors can only
// happen at prepare, before the commit decision, where aborting is safe.
//
// All mutations run under the caller's transaction, so a prepare that aborts
// installs nothing and an apply that aborts applies nothing.

// IntentKind classifies what ApplyIntent does for a key.
type IntentKind uint8

const (
	// IntentRead locks a validated read; Apply and Discard both just
	// release it.
	IntentRead IntentKind = iota
	// IntentPut buffers a value; ApplyIntent stores it.
	IntentPut
	// IntentDelete buffers a deletion; ApplyIntent removes the key.
	IntentDelete
)

// intentHeaderBytes is the payload prefix before the buffered value: txid,
// kind, and the reserved value-block address.
const intentHeaderBytes = 17

// ErrIntentHeld is returned by PrepareIntent when another transaction
// already holds an intent on the key. Returning it from a transaction body
// aborts the prepare cleanly, leaving no partial intents on this store.
var ErrIntentHeld = errors.New("store: key has a pending intent")

// ErrIntentMissing is returned by ApplyIntent/DiscardIntent when the key
// holds no intent — a protocol bug in the caller, surfaced as an error so
// the enclosing transaction aborts without mutating anything.
var ErrIntentMissing = errors.New("store: no pending intent on key")

// IntentFootprintWords returns the arena words one pending intent consumes,
// class-rounded (key block, payload block, reserved apply-time value block,
// entry record, index node) — the sizing companion of RecordFootprintWords
// for workloads that keep intents in flight.
func IntentFootprintWords(keyBytes, valueBytes int) int {
	return 1<<classOf(blockWords(keyBytes)) +
		1<<classOf(blockWords(intentHeaderBytes+valueBytes)) +
		1<<classOf(blockWords(valueBytes)) +
		1<<classOf(entryWords) +
		1<<classOf(containers.OTNodeWords)
}

// PrepareIntent installs an intent record for key owned by txid. For
// IntentPut, value is the buffered bytes to store on apply, and the value
// block the apply will install is allocated here, up front. It fails with
// ErrIntentHeld when any intent (including one of the same transaction —
// each participant prepares a key at most once) is already pending, and
// with an arena error when the store is full.
func (st *Store) PrepareIntent(tx rhtm.Tx, key []byte, txid uint64, kind IntentKind, value []byte) error {
	if _, held := st.intents.Lookup(tx, key); held {
		return ErrIntentHeld
	}
	var vb rhtm.Addr
	if kind != IntentPut {
		value = nil
	} else {
		reserved, err := st.arena.TxAlloc(tx, blockWords(len(value)))
		if err != nil {
			return err
		}
		vb = reserved
	}
	payload := make([]byte, intentHeaderBytes+len(value))
	binary.LittleEndian.PutUint64(payload, txid)
	payload[8] = byte(kind)
	binary.LittleEndian.PutUint64(payload[9:], uint64(vb))
	copy(payload[intentHeaderBytes:], value)

	kb, err := st.arena.TxAlloc(tx, blockWords(len(key)))
	if err != nil {
		return err
	}
	pb, err := st.arena.TxAlloc(tx, blockWords(len(payload)))
	if err != nil {
		return err
	}
	ent, err := st.arena.TxAlloc(tx, entryWords)
	if err != nil {
		return err
	}
	writeBytes(tx, kb, key)
	writeBytes(tx, pb, payload)
	tx.Store(ent, uint64(kb))
	tx.Store(ent+1, uint64(pb))
	if _, _, err := st.intents.Insert(tx, key, uint64(ent)); err != nil {
		return err
	}
	tx.Store(st.intentCount, tx.Load(st.intentCount)+1)
	return nil
}

// IntentOn reports whether key has a pending intent and, if so, which
// transaction owns it. Beyond the index walk it costs one data load: the
// txid occupies exactly the first payload word (see the layout comment).
func (st *Store) IntentOn(tx rhtm.Tx, key []byte) (txid uint64, held bool) {
	item, ok := st.intents.Lookup(tx, key)
	if !ok {
		return 0, false
	}
	pb := rhtm.Addr(tx.Load(rhtm.Addr(item) + 1))
	return tx.Load(pb + 1), true
}

// ApplyIntent executes and releases the intent txid holds on key: a put
// stores the buffered value into the block prepare reserved, a delete
// removes the key, a read just releases. Given a matching intent, a put or
// delete cannot fail (see the reservation argument in the package comment);
// a missing intent or an owner mismatch returns an error, which aborts the
// enclosing transaction and so leaves the store untouched.
func (st *Store) ApplyIntent(tx rhtm.Tx, key []byte, txid uint64) error {
	payload, err := st.takeIntent(tx, key, txid)
	if err != nil {
		return err
	}
	switch IntentKind(payload[8]) {
	case IntentPut:
		// Every block the store below can need beyond the reservation —
		// key block, entry record, index node — is the same size class as
		// one takeIntent just freed under this transaction, so it cannot
		// fail on capacity.
		vb := rhtm.Addr(binary.LittleEndian.Uint64(payload[9:]))
		return st.putWith(tx, key, payload[intentHeaderBytes:], vb)
	case IntentDelete:
		st.Delete(tx, key)
	}
	return nil
}

// DiscardIntent releases the intent txid holds on key without applying it
// (the abort half of the coordinator's decision), returning the reserved
// value block along with the record.
func (st *Store) DiscardIntent(tx rhtm.Tx, key []byte, txid uint64) error {
	payload, err := st.takeIntent(tx, key, txid)
	if err != nil {
		return err
	}
	if IntentKind(payload[8]) == IntentPut {
		vb := rhtm.Addr(binary.LittleEndian.Uint64(payload[9:]))
		st.arena.TxFree(tx, vb, blockWords(len(payload)-intentHeaderBytes))
	}
	return nil
}

// takeIntent unlinks key's intent record, frees its blocks, and returns the
// decoded payload after checking ownership.
func (st *Store) takeIntent(tx rhtm.Tx, key []byte, txid uint64) ([]byte, error) {
	item, ok := st.intents.Delete(tx, key)
	if !ok {
		return nil, ErrIntentMissing
	}
	ent := rhtm.Addr(item)
	kb := rhtm.Addr(tx.Load(ent))
	pb := rhtm.Addr(tx.Load(ent + 1))
	payload := readBytes(tx, pb)
	if owner := binary.LittleEndian.Uint64(payload); owner != txid {
		return nil, fmt.Errorf("store: intent on %q owned by txn %d, not %d", key, owner, txid)
	}
	st.arena.TxFree(tx, kb, blockWords(int(tx.Load(kb))))
	st.arena.TxFree(tx, pb, blockWords(len(payload)))
	st.arena.TxFree(tx, ent, entryWords)
	tx.Store(st.intentCount, tx.Load(st.intentCount)-1)
	return payload, nil
}

// HasIntentInRange reports whether any key in [start, end) (nil bounds are
// unbounded) has a pending intent. Range readers — the cluster's snapshot
// scans — use it the way single-key readers use IntentOn: a pending intent
// makes part of the range undecided, so the scan waits for resolution
// instead of returning values that may be mid-replacement.
func (st *Store) HasIntentInRange(tx rhtm.Tx, start, end []byte) bool {
	found := false
	st.intents.Scan(tx, start, end, func(uint64) bool {
		found = true
		return false
	})
	return found
}

// PendingIntents returns the number of keys with an intent installed.
func (st *Store) PendingIntents(tx rhtm.Tx) int {
	return int(tx.Load(st.intentCount))
}
