package store

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rhtm"
	"rhtm/containers"
)

// Write intents are the store-level half of the cluster package's two-phase
// commit: a prepared cross-System transaction installs one intent record per
// touched key in that key's System, and the coordinator's decision later
// applies or discards them. A *write* intent (IntentPut / IntentDelete) is
// an exclusive per-key reservation — while one is pending, the key's
// committed value cannot change (every conforming accessor checks
// WriteIntentOn / PrepareIntent first), which is what keeps a validated
// read valid between prepare and decision. A *read* intent (IntentRead) is
// shared: any number of transactions may hold read intents on the same key
// simultaneously — readers do not invalidate each other — but a read intent
// blocks writers (a write under a pinned read would invalidate the
// prepared transaction's validation), and a write intent blocks everyone.
//
// Intent records live in a second ordered index on the store's own arena,
// sharing the entry layout of data records' first two words: word 0 the key
// block, word 1 the payload block. The payload is kind-tagged and
// word-aligned so the hot checks cost single data loads beyond the index
// walk:
//
//	write intents (IntentPut / IntentDelete):
//	  byte 0       kind
//	  bytes 8..15  owning txid
//	  bytes 16..23 attached lease id (IntentPut only; 0 otherwise)
//	  bytes 24..31 reserved value-block address (IntentPut only)
//	  bytes 32..   value bytes (IntentPut only)
//
//	read intents (IntentRead):
//	  byte 0       kind
//	  bytes 8..15  sharer count n
//	  bytes 16..   n little-endian 8-byte txids
//
// A put intent pre-allocates the value block its apply will install (the
// reserved address above), so that once a transaction is decided, applying
// it cannot fail on arena exhaustion: every other block the apply needs —
// key block, entry record, index node — is the same size class as one the
// intent teardown itself frees moments earlier in the same transaction, so
// the free lists are guaranteed to serve them. Capacity errors can only
// happen at prepare, before the commit decision, where aborting is safe.
//
// All mutations run under the caller's transaction, so a prepare that aborts
// installs nothing and an apply that aborts applies nothing.

// IntentKind classifies what ApplyIntent does for a key.
type IntentKind uint8

const (
	// IntentRead pins a validated read; shared — many transactions may hold
	// one on the same key. Apply and Discard both just release the holder.
	IntentRead IntentKind = iota
	// IntentPut buffers a value; ApplyIntent stores it (with its lease).
	IntentPut
	// IntentDelete buffers a deletion; ApplyIntent removes the key.
	IntentDelete
)

// Payload header sizes (see the layout comment above).
const (
	writeIntentHeaderBytes = 32
	readIntentHeaderBytes  = 16
)

// ErrIntentHeld is returned by PrepareIntent when the requested intent
// conflicts with a pending one: any intent blocks a writer, a write intent
// blocks a reader. Returning it from a transaction body aborts the prepare
// cleanly, leaving no partial intents on this store.
var ErrIntentHeld = errors.New("store: key has a conflicting pending intent")

// ErrIntentMissing is returned by ApplyIntent/DiscardIntent when the key
// holds no intent of the given transaction — a protocol bug in the caller,
// surfaced as an error so the enclosing transaction aborts without mutating
// anything.
var ErrIntentMissing = errors.New("store: no pending intent on key")

// IntentFootprintWords returns the arena words one pending write intent
// consumes, class-rounded (key block, payload block, reserved apply-time
// value block, entry record, index node) — the sizing companion of
// RecordFootprintWords for workloads that keep intents in flight. Shared
// read-intent records are strictly smaller until their sharer list outgrows
// the value: sizing by this function covers one sharer per in-flight
// transaction key either way.
func IntentFootprintWords(keyBytes, valueBytes int) int {
	return 1<<classOf(blockWords(keyBytes)) +
		1<<classOf(blockWords(writeIntentHeaderBytes+valueBytes)) +
		1<<classOf(blockWords(valueBytes)) +
		1<<classOf(intentEntryWords) +
		1<<classOf(containers.OTNodeWords)
}

// PrepareIntent installs an intent for key owned by txid. For IntentPut,
// value is the buffered bytes to store on apply (with lease attached), and
// the value block the apply will install is allocated here, up front. An
// IntentRead joins any read intents already pending on the key (shared);
// every other combination — writer meets any intent, reader meets a write
// intent, or txid already holds the key (each participant prepares a key at
// most once) — fails with ErrIntentHeld. Arena exhaustion surfaces as its
// own error.
func (st *Store) PrepareIntent(tx rhtm.Tx, key []byte, txid uint64, kind IntentKind, value []byte, lease uint64) error {
	if item, held := st.intents.Lookup(tx, key); held {
		if kind != IntentRead {
			return ErrIntentHeld
		}
		ent := rhtm.Addr(item)
		payload := readBytes(tx, rhtm.Addr(tx.Load(ent+1)))
		if IntentKind(payload[0]) != IntentRead {
			return ErrIntentHeld
		}
		if readerIndex(payload, txid) >= 0 {
			return ErrIntentHeld
		}
		n := binary.LittleEndian.Uint64(payload[8:])
		grown := make([]byte, len(payload)+8)
		copy(grown, payload)
		binary.LittleEndian.PutUint64(grown[8:], n+1)
		binary.LittleEndian.PutUint64(grown[len(payload):], txid)
		return st.rewriteIntentPayload(tx, ent, payload, grown)
	}

	var payload []byte
	if kind == IntentRead {
		payload = make([]byte, readIntentHeaderBytes+8)
		payload[0] = byte(kind)
		binary.LittleEndian.PutUint64(payload[8:], 1)
		binary.LittleEndian.PutUint64(payload[16:], txid)
	} else {
		var vb rhtm.Addr
		if kind == IntentPut {
			reserved, err := st.arena.TxAlloc(tx, blockWords(len(value)))
			if err != nil {
				return err
			}
			vb = reserved
		} else {
			value = nil
		}
		payload = make([]byte, writeIntentHeaderBytes+len(value))
		payload[0] = byte(kind)
		binary.LittleEndian.PutUint64(payload[8:], txid)
		binary.LittleEndian.PutUint64(payload[16:], lease)
		binary.LittleEndian.PutUint64(payload[24:], uint64(vb))
		copy(payload[writeIntentHeaderBytes:], value)
	}

	kb, err := st.arena.TxAlloc(tx, blockWords(len(key)))
	if err != nil {
		return err
	}
	pb, err := st.arena.TxAlloc(tx, blockWords(len(payload)))
	if err != nil {
		return err
	}
	ent, err := st.arena.TxAlloc(tx, intentEntryWords)
	if err != nil {
		return err
	}
	writeBytes(tx, kb, key)
	writeBytes(tx, pb, payload)
	tx.Store(ent, uint64(kb))
	tx.Store(ent+1, uint64(pb))
	if _, _, err := st.intents.Insert(tx, key, uint64(ent)); err != nil {
		return err
	}
	tx.Store(st.intentCount, tx.Load(st.intentCount)+1)
	return nil
}

// rewriteIntentPayload replaces an intent record's payload block, reusing
// it in place when the new bytes pack into the same size class.
func (st *Store) rewriteIntentPayload(tx rhtm.Tx, ent rhtm.Addr, old, new []byte) error {
	pb := rhtm.Addr(tx.Load(ent + 1))
	if classOf(blockWords(len(new))) == classOf(blockWords(len(old))) {
		writeBytes(tx, pb, new)
		return nil
	}
	npb, err := st.arena.TxAlloc(tx, blockWords(len(new)))
	if err != nil {
		return err
	}
	writeBytes(tx, npb, new)
	tx.Store(ent+1, uint64(npb))
	st.arena.TxFree(tx, pb, blockWords(len(old)))
	return nil
}

// readerIndex returns the byte offset of txid in a read-intent payload's
// sharer list, or -1.
func readerIndex(payload []byte, txid uint64) int {
	n := int(binary.LittleEndian.Uint64(payload[8:]))
	for i := 0; i < n; i++ {
		off := readIntentHeaderBytes + 8*i
		if binary.LittleEndian.Uint64(payload[off:]) == txid {
			return off
		}
	}
	return -1
}

// WriteIntentOn reports whether key has a pending *write* intent and, if
// so, which transaction owns it. Readers (single-key gets, snapshot scans)
// use it: shared read intents do not change the committed value, so they
// never block another read.
func (st *Store) WriteIntentOn(tx rhtm.Tx, key []byte) (txid uint64, held bool) {
	item, ok := st.intents.Lookup(tx, key)
	if !ok {
		return 0, false
	}
	pb := rhtm.Addr(tx.Load(rhtm.Addr(item) + 1))
	// Payload word 1 holds bytes 0..7: the kind tag; word 2 bytes 8..15.
	if IntentKind(tx.Load(pb+1)&0xff) == IntentRead {
		return 0, false
	}
	return tx.Load(pb + 2), true
}

// AnyIntentOn reports whether key has any pending intent — the writer-side
// check: a write must wait for pending readers and writers alike.
func (st *Store) AnyIntentOn(tx rhtm.Tx, key []byte) bool {
	_, held := st.intents.Lookup(tx, key)
	return held
}

// ReadSharers returns how many transactions hold a read intent on key
// (0 when none, or when the pending intent is a write).
func (st *Store) ReadSharers(tx rhtm.Tx, key []byte) int {
	item, ok := st.intents.Lookup(tx, key)
	if !ok {
		return 0
	}
	pb := rhtm.Addr(tx.Load(rhtm.Addr(item) + 1))
	if IntentKind(tx.Load(pb+1)&0xff) != IntentRead {
		return 0
	}
	return int(tx.Load(pb + 2))
}

// AppliedIntent reports what ApplyIntent did: the intent's kind, the value
// and lease it installed (IntentPut), and the revision the apply stamped —
// 0 for a released read intent or a delete of an already-absent key. The
// cluster's durability hook logs it so a recovered System replays the
// apply at its original commit version.
type AppliedIntent struct {
	Kind  IntentKind
	Value []byte
	Lease uint64
	Rev   uint64
}

// ApplyIntent executes and releases the intent txid holds on key: a put
// stores the buffered value (with its lease) into the block prepare
// reserved, a delete removes the key, a read releases txid's share. Given a
// matching intent, a put or delete cannot fail (see the reservation
// argument in the package comment); a missing intent or an owner mismatch
// returns an error, which aborts the enclosing transaction and so leaves
// the store untouched.
func (st *Store) ApplyIntent(tx rhtm.Tx, key []byte, txid uint64) (AppliedIntent, error) {
	payload, err := st.resolveIntent(tx, key, txid)
	if err != nil || payload == nil {
		return AppliedIntent{}, err
	}
	switch IntentKind(payload[0]) {
	case IntentPut:
		// Every block the store below can need beyond the reservation —
		// key block, entry record, index node — is the same size class as
		// one resolveIntent just freed under this transaction, so it cannot
		// fail on capacity.
		vb := rhtm.Addr(binary.LittleEndian.Uint64(payload[24:]))
		lease := binary.LittleEndian.Uint64(payload[16:])
		value := payload[writeIntentHeaderBytes:]
		rev, err := st.putWith(tx, key, value, vb, lease, 0)
		if err != nil {
			return AppliedIntent{}, err
		}
		return AppliedIntent{Kind: IntentPut, Value: value, Lease: lease, Rev: rev}, nil
	case IntentDelete:
		rev, _ := st.deleteWith(tx, key, 0)
		return AppliedIntent{Kind: IntentDelete, Rev: rev}, nil
	}
	return AppliedIntent{Kind: IntentRead}, nil
}

// DiscardIntent releases the intent txid holds on key without applying it
// (the abort half of the coordinator's decision), returning the reserved
// value block along with the record.
func (st *Store) DiscardIntent(tx rhtm.Tx, key []byte, txid uint64) error {
	payload, err := st.resolveIntent(tx, key, txid)
	if err != nil || payload == nil {
		return err
	}
	if IntentKind(payload[0]) == IntentPut {
		vb := rhtm.Addr(binary.LittleEndian.Uint64(payload[24:]))
		st.arena.TxFree(tx, vb, blockWords(len(payload)-writeIntentHeaderBytes))
	}
	return nil
}

// resolveIntent releases txid's hold on key's intent record. For a write
// intent it unlinks the record (after checking ownership) and returns the
// decoded payload for the caller to act on. For a shared read intent it
// removes txid from the sharer list — unlinking the record only when txid
// was the last sharer — and returns (nil, nil): reads have no effect to
// apply.
func (st *Store) resolveIntent(tx rhtm.Tx, key []byte, txid uint64) ([]byte, error) {
	item, ok := st.intents.Lookup(tx, key)
	if !ok {
		return nil, ErrIntentMissing
	}
	ent := rhtm.Addr(item)
	pb := rhtm.Addr(tx.Load(ent + 1))
	payload := readBytes(tx, pb)

	if IntentKind(payload[0]) == IntentRead {
		off := readerIndex(payload, txid)
		if off < 0 {
			return nil, ErrIntentMissing
		}
		n := binary.LittleEndian.Uint64(payload[8:])
		if n > 1 {
			shrunk := make([]byte, len(payload)-8)
			copy(shrunk, payload)
			copy(shrunk[off:], payload[off+8:])
			binary.LittleEndian.PutUint64(shrunk[8:], n-1)
			return nil, st.rewriteIntentPayload(tx, ent, payload, shrunk)
		}
		st.unlinkIntent(tx, key)
		return nil, nil
	}

	if owner := binary.LittleEndian.Uint64(payload[8:]); owner != txid {
		return nil, fmt.Errorf("store: intent on %q owned by txn %d, not %d", key, owner, txid)
	}
	st.unlinkIntent(tx, key)
	return payload, nil
}

// unlinkIntent removes key's intent record and frees its blocks.
func (st *Store) unlinkIntent(tx rhtm.Tx, key []byte) {
	item, _ := st.intents.Delete(tx, key)
	ent := rhtm.Addr(item)
	kb := rhtm.Addr(tx.Load(ent))
	pb := rhtm.Addr(tx.Load(ent + 1))
	st.arena.TxFree(tx, kb, blockWords(int(tx.Load(kb))))
	st.arena.TxFree(tx, pb, blockWords(int(tx.Load(pb))))
	st.arena.TxFree(tx, ent, intentEntryWords)
	tx.Store(st.intentCount, tx.Load(st.intentCount)-1)
}

// HasWriteIntentInRange reports whether any key in [start, end) (nil bounds
// are unbounded) has a pending write intent. Range readers — the cluster's
// snapshot scans — use it the way single-key readers use WriteIntentOn: a
// pending write makes part of the range undecided, so the scan waits for
// resolution instead of returning values that may be mid-replacement.
// Shared read intents are invisible here: they pin values without changing
// them.
func (st *Store) HasWriteIntentInRange(tx rhtm.Tx, start, end []byte) bool {
	found := false
	st.intents.Scan(tx, start, end, func(item uint64) bool {
		pb := rhtm.Addr(tx.Load(rhtm.Addr(item) + 1))
		if IntentKind(tx.Load(pb+1)&0xff) != IntentRead {
			found = true
			return false
		}
		return true
	})
	return found
}

// PendingIntents returns the number of keys with an intent record installed
// (a shared read record with any number of sharers counts once).
func (st *Store) PendingIntents(tx rhtm.Tx) int {
	return int(tx.Load(st.intentCount))
}
