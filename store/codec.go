package store

import (
	"rhtm"
)

// Varlen block encoding: word 0 holds the payload length in bytes; the
// following ceil(len/8) words hold the payload packed little-endian, eight
// bytes per word, with the last word zero-padded. The whole repository's
// transactional substrate is 64-bit words, so this codec is the boundary
// where []byte keys and values become simulated memory.

// blockWords returns the block size in words for n payload bytes.
func blockWords(n int) int { return 1 + (n+7)/8 }

// writeBytes encodes b into the block at a (which must span blockWords(len(b))
// words) under tx.
func writeBytes(tx rhtm.Tx, a rhtm.Addr, b []byte) {
	tx.Store(a, uint64(len(b)))
	for i := 0; i < len(b); i += 8 {
		var w uint64
		for j := 0; j < 8 && i+j < len(b); j++ {
			w |= uint64(b[i+j]) << (8 * uint(j))
		}
		tx.Store(a+1+rhtm.Addr(i/8), w)
	}
}

// readBytes decodes the block at a under tx.
func readBytes(tx rhtm.Tx, a rhtm.Addr) []byte {
	n := int(tx.Load(a))
	b := make([]byte, n)
	for i := 0; i < n; i += 8 {
		w := tx.Load(a + 1 + rhtm.Addr(i/8))
		for j := 0; j < 8 && i+j < n; j++ {
			b[i+j] = byte(w >> (8 * uint(j)))
		}
	}
	return b
}

// compareBytes orders the probe key against the block at a,
// lexicographically, loading one word at a time and stopping at the first
// differing byte.
func compareBytes(tx rhtm.Tx, key []byte, a rhtm.Addr) int {
	n := int(tx.Load(a))
	m := len(key)
	limit := n
	if m < limit {
		limit = m
	}
	for i := 0; i < limit; i += 8 {
		w := tx.Load(a + 1 + rhtm.Addr(i/8))
		for j := 0; j < 8 && i+j < limit; j++ {
			kb, sb := key[i+j], byte(w>>(8*uint(j)))
			if kb != sb {
				if kb < sb {
					return -1
				}
				return 1
			}
		}
	}
	switch {
	case m < n:
		return -1
	case m > n:
		return 1
	default:
		return 0
	}
}
