package store

import (
	"bytes"
	"fmt"
	"testing"

	"rhtm/containers"
)

// TestSharedReadIntents pins the shared/exclusive matrix: readers coexist
// with readers, everything else conflicts.
func TestSharedReadIntents(t *testing.T) {
	s := newSys(1 << 16)
	st := New(s, Options{ArenaWords: 1 << 13})
	tx := containers.SetupTx(s)
	key := []byte("shared")
	if err := st.Put(tx, key, []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Three transactions pin the same key with read intents.
	for txid := uint64(1); txid <= 3; txid++ {
		if err := st.PrepareIntent(tx, key, txid, IntentRead, nil, 0); err != nil {
			t.Fatalf("reader %d refused: %v", txid, err)
		}
	}
	if got := st.ReadSharers(tx, key); got != 3 {
		t.Fatalf("ReadSharers = %d, want 3", got)
	}
	if got := st.PendingIntents(tx); got != 1 {
		t.Fatalf("PendingIntents = %d, want 1 (one shared record)", got)
	}
	// Readers never surface as write intents: reads and scans pass through.
	if _, held := st.WriteIntentOn(tx, key); held {
		t.Fatal("shared read intent reported as a write intent")
	}
	if st.HasWriteIntentInRange(tx, nil, nil) {
		t.Fatal("shared read intent blocked a range check")
	}
	// The same transaction may not prepare the key twice.
	if err := st.PrepareIntent(tx, key, 2, IntentRead, nil, 0); err != ErrIntentHeld {
		t.Fatalf("duplicate reader err = %v, want ErrIntentHeld", err)
	}
	// Writers are refused while any reader holds the key.
	if err := st.PrepareIntent(tx, key, 9, IntentPut, []byte("w"), 0); err != ErrIntentHeld {
		t.Fatalf("writer vs readers err = %v, want ErrIntentHeld", err)
	}

	// Release one reader: the record shrinks but stays shared.
	if _, err := st.ApplyIntent(tx, key, 2); err != nil {
		t.Fatal(err)
	}
	if got := st.ReadSharers(tx, key); got != 2 {
		t.Fatalf("ReadSharers after release = %d, want 2", got)
	}
	// A released transaction cannot release twice.
	if err := st.DiscardIntent(tx, key, 2); err != ErrIntentMissing {
		t.Fatalf("double release err = %v, want ErrIntentMissing", err)
	}
	// Draining the remaining readers removes the record entirely.
	if err := st.DiscardIntent(tx, key, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyIntent(tx, key, 3); err != nil {
		t.Fatal(err)
	}
	if st.AnyIntentOn(tx, key) {
		t.Fatal("drained read record still pending")
	}
	// Now a writer gets through, and blocks subsequent readers.
	if err := st.PrepareIntent(tx, key, 9, IntentPut, []byte("w"), 0); err != nil {
		t.Fatal(err)
	}
	if err := st.PrepareIntent(tx, key, 10, IntentRead, nil, 0); err != ErrIntentHeld {
		t.Fatalf("reader vs writer err = %v, want ErrIntentHeld", err)
	}
	if _, err := st.ApplyIntent(tx, key, 9); err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Get(tx, key); !bytes.Equal(v, []byte("w")) {
		t.Fatalf("value = %q, want w", v)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRevisionsMonotonicPerKey: every write stamps a fresh, strictly larger
// revision; deletes consume revisions too, so a reinserted key can never
// repeat one (no ABA across delete/reinsert).
func TestRevisionsMonotonicPerKey(t *testing.T) {
	s := newSys(1 << 16)
	st := New(s, Options{ArenaWords: 1 << 13})
	tx := containers.SetupTx(s)
	key := []byte("k")

	if _, ok := st.RevOf(tx, key); ok {
		t.Fatal("absent key has a revision")
	}
	var last uint64
	for i := 0; i < 5; i++ {
		if err := st.Put(tx, key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		rev, ok := st.RevOf(tx, key)
		if !ok || rev <= last {
			t.Fatalf("write %d: rev = %d (ok=%v), want > %d", i, rev, ok, last)
		}
		last = rev
	}
	st.Delete(tx, key)
	if err := st.Put(tx, key, []byte("again")); err != nil {
		t.Fatal(err)
	}
	rev, _ := st.RevOf(tx, key)
	if rev <= last {
		t.Fatalf("reinserted rev = %d, want > %d (delete must consume a revision)", rev, last)
	}
	// Writes to other keys advance the same per-store clock.
	if err := st.Put(tx, []byte("other"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if orev, _ := st.RevOf(tx, []byte("other")); orev <= rev {
		t.Fatalf("other key rev = %d, want > %d", orev, rev)
	}
}

// TestLeaseStamping: PutLease attaches, plain Put detaches, the intent
// apply path carries the lease through 2PC's phase 2.
func TestLeaseStamping(t *testing.T) {
	s := newSys(1 << 16)
	st := New(s, Options{ArenaWords: 1 << 13})
	tx := containers.SetupTx(s)
	key := []byte("session")

	if err := st.PutLease(tx, key, []byte("v1"), 77); err != nil {
		t.Fatal(err)
	}
	if lease, ok := st.LeaseOf(tx, key); !ok || lease != 77 {
		t.Fatalf("LeaseOf = (%d,%v), want (77,true)", lease, ok)
	}
	if err := st.Put(tx, key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if lease, _ := st.LeaseOf(tx, key); lease != 0 {
		t.Fatalf("plain Put left lease %d attached", lease)
	}
	if err := st.PrepareIntent(tx, key, 5, IntentPut, []byte("v3"), 88); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyIntent(tx, key, 5); err != nil {
		t.Fatal(err)
	}
	val, _, lease, ok := st.Read(tx, key)
	if !ok || !bytes.Equal(val, []byte("v3")) || lease != 88 {
		t.Fatalf("Read = (%q, lease=%d, ok=%v), want (v3, 88, true)", val, lease, ok)
	}
}

// TestEventLogOrder: the log records every committed mutation in order,
// with per-key revisions ascending, and delete events carry no value.
func TestEventLogOrder(t *testing.T) {
	s := newSys(1 << 16)
	st := New(s, Options{ArenaWords: 1 << 13})
	tx := containers.SetupTx(s)
	log := st.Events()
	from := log.Head(tx)

	if err := st.Put(tx, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(tx, []byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(tx, []byte("a"), []byte("3")); err != nil {
		t.Fatal(err)
	}
	st.Delete(tx, []byte("b"))

	events, next, oldest := log.Read(tx, from, 100)
	if oldest > from {
		t.Fatalf("log compacted immediately: oldest %d > from %d", oldest, from)
	}
	if next <= from || len(events) != 4 {
		t.Fatalf("Read returned %d events (next=%d)", len(events), next)
	}
	wantKeys := []string{"a", "b", "a", "b"}
	wantKinds := []EvKind{EvPut, EvPut, EvPut, EvDelete}
	var lastRev uint64
	for i, ev := range events {
		if string(ev.Key) != wantKeys[i] || ev.Kind != wantKinds[i] {
			t.Fatalf("event %d = %q/%v, want %q/%v", i, ev.Key, ev.Kind, wantKeys[i], wantKinds[i])
		}
		if ev.Rev <= lastRev {
			t.Fatalf("event %d rev %d not ascending past %d", i, ev.Rev, lastRev)
		}
		lastRev = ev.Rev
	}
	if !bytes.Equal(events[2].Value, []byte("3")) {
		t.Fatalf("overwrite event value = %q, want 3", events[2].Value)
	}
	if events[3].Value != nil {
		t.Fatalf("delete event carries value %q", events[3].Value)
	}

	// Incremental reads resume exactly where they left off.
	half, mid, _ := log.Read(tx, from, 2)
	rest, end, _ := log.Read(tx, mid, 100)
	if len(half) != 2 || len(rest) != 2 || end != next {
		t.Fatalf("chunked read: %d + %d events, end %d vs %d", len(half), len(rest), end, next)
	}
}

// TestEventLogWrapAndCompaction: a small ring overwrites old records whole,
// keeps records decodable across the wrap boundary, and reports the gap to
// a lagging reader.
func TestEventLogWrapAndCompaction(t *testing.T) {
	s := newSys(1 << 16)
	st := New(s, Options{ArenaWords: 1 << 13, LogWords: minLogWords})
	tx := containers.SetupTx(s)
	log := st.Events()

	for i := 0; i < 100; i++ {
		if err := st.Put(tx, []byte(fmt.Sprintf("key-%02d", i%7)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	events, next, oldest := log.Read(tx, 0, 1000)
	if oldest == 0 {
		t.Fatal("100 writes through a 64-word ring never compacted")
	}
	if len(events) == 0 {
		t.Fatal("no events retained")
	}
	if next != log.Head(tx) {
		t.Fatalf("read stopped at %d, head %d", next, log.Head(tx))
	}
	// Retained events decode coherently: ascending revisions, sane keys.
	var lastRev uint64
	for i, ev := range events {
		if ev.Rev <= lastRev {
			t.Fatalf("event %d rev %d not ascending", i, ev.Rev)
		}
		lastRev = ev.Rev
		if len(ev.Key) != 6 || ev.Kind != EvPut {
			t.Fatalf("event %d decoded as %q/%v", i, ev.Key, ev.Kind)
		}
	}
	// The newest event must be the last write.
	last := events[len(events)-1]
	if string(last.Key) != "key-99"[:0]+fmt.Sprintf("key-%02d", 99%7) || last.Value[0] != 99 {
		t.Fatalf("newest event = %q=%v", last.Key, last.Value)
	}

	// Oversized values are elided rather than flushing the whole ring.
	big := make([]byte, 8*minLogWords)
	if err := st.Put(tx, []byte("big"), big); err != nil {
		t.Fatal(err)
	}
	events, _, _ = log.Read(tx, log.Head(tx)-3, 10)
	found := false
	for _, ev := range events {
		if string(ev.Key) == "big" {
			found = true
			if !ev.ValueElided || ev.Value != nil {
				t.Fatalf("oversized value not elided: %+v", ev)
			}
		}
	}
	if !found {
		t.Fatal("elided event missing")
	}
}
