package store

import (
	"errors"
	"fmt"

	"rhtm"
)

// numClasses bounds block sizes: the largest class is 1<<(numClasses-1)
// words (256 KiB of payload), far above any sane value size.
const numClasses = 16

// ErrArenaFull is returned by allocation when the arena's bump region is
// exhausted and no free block of the right class exists. Returning it from
// a transaction body aborts the transaction cleanly, leaving the store
// unchanged.
var ErrArenaFull = errors.New("store: arena exhausted")

// ErrTooLarge is returned (wrapped, with the sizes) by allocation when the
// requested block exceeds the largest size class — a key or value too big
// for the store, as opposed to a store that is merely full.
var ErrTooLarge = errors.New("store: block exceeds the largest size class")

// Arena is a transactional size-class free-list allocator over a region of
// simulated memory. All allocator state — the bump pointer and one
// free-list head per power-of-two size class — lives in simulated words and
// is manipulated exclusively through the enclosing transaction, so an
// aborted transaction rolls back its allocations and frees along with its
// data writes. That is what makes reclamation safe here when it is not in
// the bare containers (see RBTree.Delete): a block freed by a transaction
// that later aborts was never actually freed.
//
// The word at offset 0 of a free block holds the address of the next free
// block of its class (0 terminates the list). Allocated blocks are handed
// out with unspecified contents; callers initialize every word they read.
type Arena struct {
	sys   *rhtm.System
	base  rhtm.Addr // block storage region
	words int
	bump  rhtm.Addr // one word: address of the next unused block
	heads rhtm.Addr // numClasses words: free-list heads
	ctrs  rhtm.Addr // numClasses words: free words per class (O(1) Stats)
}

// NewArena carves an arena of the given word count out of the system heap.
// Call during single-threaded setup.
func NewArena(s *rhtm.System, words int) *Arena {
	a := &Arena{
		sys:   s,
		bump:  s.MustAlloc(1),
		heads: s.MustAlloc(numClasses),
		ctrs:  s.MustAlloc(numClasses),
		base:  s.MustAlloc(words),
		words: words,
	}
	s.Poke(a.bump, uint64(a.base))
	return a
}

// classOf returns the size class of an n-word block: the smallest c with
// 1<<c >= n.
func classOf(n int) int {
	c := 0
	for 1<<c < n {
		c++
	}
	return c
}

// TxAlloc implements containers.Allocator: it returns a block of at least
// words simulated words, reusing a freed block of the same class when one
// exists and bumping the arena frontier otherwise.
func (a *Arena) TxAlloc(tx rhtm.Tx, words int) (rhtm.Addr, error) {
	c := classOf(words)
	if c >= numClasses {
		return 0, fmt.Errorf("store: block of %d words exceeds the largest class (%d words): %w",
			words, 1<<(numClasses-1), ErrTooLarge)
	}
	headAddr := a.heads + rhtm.Addr(c)
	if head := tx.Load(headAddr); head != uint64(rhtm.NilAddr) {
		tx.Store(headAddr, tx.Load(rhtm.Addr(head)))
		ctr := a.ctrs + rhtm.Addr(c)
		tx.Store(ctr, tx.Load(ctr)-uint64(1)<<c)
		return rhtm.Addr(head), nil
	}
	p := tx.Load(a.bump)
	size := uint64(1) << c
	if p+size > uint64(a.base)+uint64(a.words) {
		return 0, ErrArenaFull
	}
	tx.Store(a.bump, p+size)
	return rhtm.Addr(p), nil
}

// TxFree implements containers.Allocator: it pushes the block onto its
// class's free list under the caller's transaction.
func (a *Arena) TxFree(tx rhtm.Tx, addr rhtm.Addr, words int) {
	c := classOf(words)
	headAddr := a.heads + rhtm.Addr(c)
	tx.Store(addr, tx.Load(headAddr))
	tx.Store(headAddr, uint64(addr))
	ctr := a.ctrs + rhtm.Addr(c)
	tx.Store(ctr, tx.Load(ctr)+uint64(1)<<c)
}

// Words returns the arena capacity in words.
func (a *Arena) Words() int { return a.words }

// ArenaStats describes an arena's occupancy at one instant. BumpedWords is
// what the frontier has handed out since setup; FreeListWords is the portion
// of that currently idle on the free lists, so LiveWords (the difference) is
// what reachable blocks actually occupy. The gap between LiveWords and the
// payload callers asked for is size-class rounding waste — the quantity the
// ROADMAP's compaction item needs measured.
type ArenaStats struct {
	CapacityWords int
	BumpedWords   int
	FreeListWords int
	LiveWords     int
}

// Stats gathers occupancy counters under tx in O(numClasses): the per-class
// free-word counters are maintained incrementally by TxAlloc/TxFree (the
// counter cells share a conflict footprint with the free-list heads they
// mirror), so Stats costs one load per class instead of one per free block
// and is safe to poll from running workloads.
func (a *Arena) Stats(tx rhtm.Tx) ArenaStats {
	s := ArenaStats{
		CapacityWords: a.words,
		BumpedWords:   int(tx.Load(a.bump) - uint64(a.base)),
	}
	for c := 0; c < numClasses; c++ {
		s.FreeListWords += int(tx.Load(a.ctrs + rhtm.Addr(c)))
	}
	s.LiveWords = s.BumpedWords - s.FreeListWords
	return s
}

// walkFreeWords recounts the free-list words by full traversal — the O(n)
// ground truth the incremental counters must match. Validation only.
func (a *Arena) walkFreeWords(tx rhtm.Tx) int {
	total := 0
	for c := 0; c < numClasses; c++ {
		for n := tx.Load(a.heads + rhtm.Addr(c)); n != uint64(rhtm.NilAddr); n = tx.Load(rhtm.Addr(n)) {
			total += 1 << c
		}
	}
	return total
}

// BumpedWords returns how many words the bump frontier has consumed
// (allocated plus currently free-listed). Setup/diagnostics only.
func (a *Arena) BumpedWords() int {
	return int(a.sys.Peek(a.bump) - uint64(a.base))
}
