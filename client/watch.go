package client

import (
	"context"
	"sync"

	"rhtm/kv"
	"rhtm/server/wire"
)

// Watch implements kv.DB: subscribe on one pooled connection, then pump
// server-push Event frames into a kv.Watch channel. The pump's queue is
// bounded by kv.MaxWatchQueue with the same overflow ladder as the
// in-process hub — coalesce to latest-value-per-key first, declare an
// EventLost gap only when even that cannot keep up — so a slow consumer
// degrades identically whether the DB is in-process or remote. Cancelling
// ctx sends WatchCancel and the channel closes once the server's
// WatchEnd arrives.
func (c *Client) Watch(ctx context.Context, prefix []byte, fromRev kv.Revision) (<-chan kv.Event, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	cn := c.pick()
	wp := &watchPump{
		c:      c,
		cn:     cn,
		ctx:    ctx,
		out:    make(chan kv.Event, 16),
		subbed: make(chan error, 1),
		nudge:  make(chan struct{}, 1),
		queue:  kv.NewWatchQueue(),
	}
	w := &waiter{wp: wp}
	id := cn.register(w)
	wp.id = id
	if err := cn.write(wire.Msg{ID: id, Kind: wire.KindWatch, Key: prefix, Rev: fromRev}); err != nil {
		cn.unregister(id)
		return nil, err
	}
	select {
	case err := <-wp.subbed:
		if err != nil {
			cn.unregister(id)
			return nil, err
		}
	case <-cn.dead:
		cn.unregister(id)
		return nil, cn.termErr
	}
	c.watchWG.Add(1)
	go wp.run()
	return wp.out, nil
}

// watchPump owns one watch stream's client side: the reader goroutine
// enqueues frames (never blocking), the pump goroutine delivers to the
// consumer and drives the cancel handshake.
type watchPump struct {
	c   *Client
	cn  *netConn
	ctx context.Context
	id  uint64
	out chan kv.Event

	subbed chan error
	nudge  chan struct{}

	mu    sync.Mutex
	queue *kv.WatchQueue
	ended bool
	subOK bool
}

// deliver is called by the connection reader with every frame addressed
// to this watch's id. It must not block: events land in the bounded
// queue under the kv overflow contract.
func (wp *watchPump) deliver(m wire.Msg) {
	switch m.Kind {
	case wire.KindOK:
		wp.mu.Lock()
		wp.subOK = true
		wp.mu.Unlock()
		wp.subbed <- nil
		return
	case wire.KindErr:
		wp.mu.Lock()
		subOK := wp.subOK
		wp.ended = true
		wp.mu.Unlock()
		if !subOK {
			wp.subbed <- wire.ErrOf(m.Code, m.Text)
			return
		}
	case wire.KindEvent:
		wp.enqueue(kv.Event{Kind: kv.EventKind(m.Code), Key: m.Key, Value: m.Value, Rev: m.Rev})
	case wire.KindWatchEnd:
		wp.mu.Lock()
		wp.ended = true
		wp.mu.Unlock()
	}
	wp.wake()
}

func (wp *watchPump) wake() {
	select {
	case wp.nudge <- struct{}{}:
	default:
	}
}

// enqueue applies the kv overflow ladder at the client edge — the same
// kv.WatchQueue the in-process hub's subscribers run, cross-key eviction
// included, so a consumer stalled behind a remote stream degrades to
// latest-value-per-key exactly as it would in-process.
func (wp *watchPump) enqueue(ev kv.Event) {
	wp.mu.Lock()
	wp.queue.Push(ev)
	wp.mu.Unlock()
}

// run delivers queued events to the consumer until the stream ends. On
// ctx cancellation it sends one WatchCancel (carrying the watch id) and
// keeps draining — discarding undeliverable events — until the server's
// WatchEnd closes the stream, which is what keeps cancel-then-
// WaitWatchIdle ordered across the wire.
func (wp *watchPump) run() {
	cancelSent := false
	defer func() {
		close(wp.out)
		wp.c.watchWG.Done()
	}()
	for {
		wp.mu.Lock()
		ev, have := wp.queue.PopFront()
		ended := wp.ended
		wp.mu.Unlock()

		if !have {
			if ended {
				return
			}
			select {
			case <-wp.nudge:
			case <-wp.ctx.Done():
				cancelSent = wp.sendCancel(cancelSent)
				select {
				case <-wp.nudge:
				case <-wp.cn.dead:
					return
				}
			case <-wp.cn.dead:
				return
			}
			continue
		}
		if wp.ctx.Err() != nil {
			cancelSent = wp.sendCancel(cancelSent)
			continue // cancelled: drain and discard
		}
		select {
		case wp.out <- ev:
		case <-wp.ctx.Done():
			cancelSent = wp.sendCancel(cancelSent)
		case <-wp.cn.dead:
			return
		}
	}
}

func (wp *watchPump) sendCancel(already bool) bool {
	if !already {
		// Ignore the outcome: the only failure modes are a dead
		// connection (the stream ends through dead) or a watch that
		// already ended server-side (the WatchEnd is in flight).
		wp.cn.roundTrip(wire.Msg{Kind: wire.KindWatchCancel, Rev: wp.id})
	}
	return true
}
