package client

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"rhtm/kv"
	"rhtm/obs"
	"rhtm/server/wire"
)

// maxAttempts mirrors the kv package's retry bound.
const maxAttempts = 10_000

// Update implements kv.DB with an optimistic closure transaction at the
// network edge. The closure runs locally: first reads fetch GetRev over
// the wire and record (key, revision) as commit conditions, repeat reads
// hit the cache, writes buffer. Commit ships conditions plus buffered
// writes as one Txn frame; the server validates every condition inside
// one transaction and applies the writes atomically. Validation failure
// is kv.ErrConflict, and the closure re-runs against fresh reads — the
// same loop the in-process backends run, with the read set explicit on
// the wire. Like the cluster backend, scans validate the entries they
// yielded, not the range (phantoms are unprotected).
func (c *Client) Update(fn func(tx kv.Txn) error) error {
	for attempt := 0; attempt < maxAttempts; attempt++ {
		t := &clientTxn{c: c}
		start := time.Now()
		err := fn(t)
		var rev kv.Revision
		if err == nil {
			rev, err = t.commit()
		}
		if trc := c.tracer(); trc != nil {
			sp := obs.Span{Engine: c.engine, Attempt: attempt, Wall: time.Since(start)}
			switch {
			case err == nil:
				sp.Outcome = obs.OutcomeCommit
				sp.CommitRev = rev
			case errors.Is(err, kv.ErrConflict):
				sp.Outcome = obs.OutcomeConflict
			default:
				sp.Outcome = obs.OutcomeError
				sp.Err = err.Error()
			}
			trc.TxnAttempt(sp)
		}
		if !errors.Is(err, kv.ErrConflict) {
			return err
		}
		backoff(attempt)
	}
	return fmt.Errorf("client: update retries exhausted after %d attempts: %w", maxAttempts, kv.ErrConflict)
}

// backoff mirrors kv's conflict backoff: yield first, then randomized
// exponential sleeps.
func backoff(attempt int) {
	if attempt < 4 {
		runtime.Gosched()
		return
	}
	shift := attempt
	if shift > 10 {
		shift = 10
	}
	time.Sleep(time.Duration(1+rand.Intn(1<<shift)) * time.Microsecond)
}

// readObs is one committed observation: the value (nil when absent), the
// revision the commit condition validates (0 = must still be absent), and
// whether the key existed.
type readObs struct {
	val   []byte
	rev   kv.Revision
	found bool
}

type writeOp struct {
	del   bool
	val   []byte
	lease kv.LeaseID
}

// clientTxn implements kv.Txn against the read cache and write buffer.
type clientTxn struct {
	c      *Client
	reads  map[string]readObs
	writes map[string]*writeOp
	order  []string
}

// read returns the committed observation for key, fetching it over the
// wire on first use. The first observation wins: it is the revision the
// commit will validate.
func (t *clientTxn) read(key []byte) (readObs, error) {
	if r, ok := t.reads[string(key)]; ok {
		return r, nil
	}
	m, err := t.c.do(wire.Msg{Kind: wire.KindGetRev, Key: key})
	if err != nil {
		return readObs{}, err
	}
	r := readObs{val: m.Value, rev: m.Rev, found: m.Flags&wire.FlagAbsent == 0}
	if !r.found {
		r.val, r.rev = nil, 0
	}
	if t.reads == nil {
		t.reads = make(map[string]readObs)
	}
	t.reads[string(key)] = r
	return r, nil
}

func (t *clientTxn) buffer(key []byte, w *writeOp) {
	if t.writes == nil {
		t.writes = make(map[string]*writeOp)
	}
	if _, ok := t.writes[string(key)]; !ok {
		t.order = append(t.order, string(key))
	}
	t.writes[string(key)] = w
}

// Get implements kv.Txn: the transaction's own writes win, then the read
// cache, then one wire fetch. Every call returns a fresh copy — closures
// may mutate the returned slice in place.
func (t *clientTxn) Get(key []byte) ([]byte, error) {
	if kv.IsReservedKey(key) {
		return nil, kv.ErrReservedKey
	}
	if w, ok := t.writes[string(key)]; ok {
		if w.del {
			return nil, kv.ErrNotFound
		}
		return append([]byte(nil), w.val...), nil
	}
	r, err := t.read(key)
	if err != nil {
		return nil, err
	}
	if !r.found {
		return nil, kv.ErrNotFound
	}
	return append([]byte(nil), r.val...), nil
}

// Revision implements kv.Txn, reporting the committed observation (like
// the cluster backend's buffered transactions; see the kv.Txn contract —
// read the revision before writing the key).
func (t *clientTxn) Revision(key []byte) (kv.Revision, error) {
	if kv.IsReservedKey(key) {
		return 0, kv.ErrReservedKey
	}
	r, err := t.read(key)
	if err != nil {
		return 0, err
	}
	return r.rev, nil
}

// Put implements kv.Txn.
func (t *clientTxn) Put(key, value []byte, opts ...kv.PutOption) error {
	if kv.IsReservedKey(key) {
		return kv.ErrReservedKey
	}
	t.buffer(key, &writeOp{val: append([]byte(nil), value...), lease: kv.LeaseOf(opts...)})
	return nil
}

// Delete implements kv.Txn. Existence is judged against the transaction's
// own buffer first, then the committed observation — which is fetched if
// missing, so every buffered delete carries a validating condition.
func (t *clientTxn) Delete(key []byte) error {
	if kv.IsReservedKey(key) {
		return kv.ErrReservedKey
	}
	if w, ok := t.writes[string(key)]; ok {
		if w.del {
			return kv.ErrNotFound
		}
		if _, err := t.read(key); err != nil {
			return err
		}
		t.buffer(key, &writeOp{del: true})
		return nil
	}
	r, err := t.read(key)
	if err != nil {
		return err
	}
	if !r.found {
		return kv.ErrNotFound
	}
	t.buffer(key, &writeOp{del: true})
	return nil
}

// Scan implements kv.Txn: one FlagWithRev scan collects committed entries
// with their revisions inside a server-side transaction; each yielded
// entry joins the read set, the local write buffer is overlaid, and the
// merged view is truncated to limit. The committed fetch over-fetches by
// the buffer size so transaction-local deletes cannot under-fill.
func (t *clientTxn) Scan(start, end []byte, limit int) kv.Iterator {
	fetch := limit
	if fetch > 0 {
		fetch += len(t.writes)
	}
	sm := wire.Msg{
		Kind: wire.KindScan, Flags: wire.FlagWithRev,
		Key: start, End: end, Rev: uint64(fetch),
	}
	str := t.c.beginTrace(&sm)
	r, err := t.c.pick().scan(sm)
	if str != nil {
		t.c.finishTrace(str, r, err)
	}
	if err != nil {
		return &sliceIter{err: err}
	}
	entries := r.Entries
	merged := make(map[string][]byte, len(entries))
	for _, e := range entries {
		k := string(e.Key)
		if _, ok := t.reads[k]; !ok {
			if t.reads == nil {
				t.reads = make(map[string]readObs)
			}
			t.reads[k] = readObs{val: e.Value, rev: e.Rev, found: true}
		}
		merged[k] = e.Value
	}
	for k, w := range t.writes {
		if !inRange(k, start, end) {
			continue
		}
		if w.del {
			delete(merged, k)
		} else {
			merged[k] = w.val
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if limit > 0 && len(keys) > limit {
		keys = keys[:limit]
	}
	out := make([]wire.Entry, len(keys))
	for i, k := range keys {
		out[i] = wire.Entry{Key: []byte(k), Value: merged[k]}
	}
	return &sliceIter{entries: out}
}

func inRange(k string, start, end []byte) bool {
	if kv.IsReservedKey([]byte(k)) {
		return false
	}
	if len(start) > 0 && k < string(start) {
		return false
	}
	if end != nil && k >= string(end) {
		return false
	}
	return true
}

// commit ships the read set as conditions and the write buffer as ops. A
// transaction that read and wrote nothing commits locally for free; one
// that only read still commits over the wire, revalidating its reads so
// a torn multi-key read can never return success.
func (t *clientTxn) commit() (kv.Revision, error) {
	if len(t.reads) == 0 && len(t.writes) == 0 {
		return 0, nil
	}
	conds := make([]wire.Cond, 0, len(t.reads))
	for k, r := range t.reads {
		conds = append(conds, wire.Cond{Key: []byte(k), Rev: r.rev})
	}
	sort.Slice(conds, func(i, j int) bool { return string(conds[i].Key) < string(conds[j].Key) })
	var ops []kv.Op
	for _, k := range t.order {
		w := t.writes[k]
		if w.del {
			// Every buffered delete fetched its committed observation
			// (see Delete): when the key was absent before this
			// transaction, the delete of a transaction-local write nets
			// out to nothing — the rev-0 condition alone keeps the
			// serialization honest.
			if r := t.reads[k]; !r.found {
				continue
			}
			ops = append(ops, kv.Op{Kind: kv.OpDelete, Key: []byte(k)})
			continue
		}
		ops = append(ops, kv.Op{Kind: kv.OpPut, Key: []byte(k), Value: w.val, Lease: w.lease})
	}
	r, err := t.c.do(wire.Msg{Kind: wire.KindTxn, Conds: conds, Ops: ops})
	if err != nil {
		return 0, err
	}
	return r.Rev, nil
}

var _ kv.Txn = (*clientTxn)(nil)
