package client_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"rhtm"
	"rhtm/client"
	"rhtm/cluster"
	"rhtm/internal/enginetest/dbtest"
	"rhtm/kv"
	"rhtm/obs"
	"rhtm/repl"
	"rhtm/server"
	"rhtm/store"
	"rhtm/wal"
)

// startRig serves db on an ephemeral port and dials a pooled client,
// wiring both into the test's cleanup in drain order (client first).
func startRig(t *testing.T, db kv.DB, reg *obs.Registry, engine string, conns int) *client.Client {
	t.Helper()
	srv := server.New(db, server.WithMetrics(reg), server.WithEngineName(engine))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("server start: %v", err)
	}
	cl, err := client.Dial(addr.String(), client.WithConns(conns))
	if err != nil {
		srv.Close()
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
	})
	return cl
}

// netLocalFactory is the client→server→Local rig: a sharded store-backed
// DB behind a real TCP server, the client standing in as the kv.DB under
// test. The server shares the DB's registry so server.* instruments ride
// in the same Metrics snapshots the battery asserts on.
func netLocalFactory(engineName string, shards, inject int) dbtest.DBFactory {
	return func(t *testing.T) (kv.DB, *kv.ManualClock, func() error) {
		s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
		var eng rhtm.Engine
		switch engineName {
		case "RH1":
			eng = rhtm.NewRH1(s, rhtm.RH1Options{MixPercent: 100, InjectAbortPercent: inject})
		case "TL2":
			eng = rhtm.NewTL2(s)
		default:
			t.Fatalf("unknown engine %q", engineName)
		}
		clock := kv.NewManualClock()
		reg := obs.NewRegistry()
		sh := store.NewSharded(s, 4, store.Options{ArenaWords: 1 << 13})
		db := kv.NewLocal(eng, sh, kv.WithClock(clock), kv.WithMetrics(reg))
		cl := startRig(t, db, reg, engineName, 3)
		return cl, clock, sh.Validate
	}
}

// netClusterFactory is the client→server→ClusterDB rig: the same wire
// front end over the 2PC coordinator, with injected hardware aborts
// exercising the fallback paths under network-shaped load.
func netClusterFactory(engineName string, systems, inject int) dbtest.DBFactory {
	return func(t *testing.T) (kv.DB, *kv.ManualClock, func() error) {
		c := cluster.MustNew(cluster.Config{
			Systems:    systems,
			DataWords:  1 << 15,
			ArenaWords: 1 << 13,
			NewEngine: func(s *rhtm.System) (rhtm.Engine, error) {
				switch engineName {
				case "RH1":
					return rhtm.NewRH1(s, rhtm.RH1Options{MixPercent: 100, InjectAbortPercent: inject}), nil
				case "TL2":
					return rhtm.NewTL2(s), nil
				}
				return nil, errors.New("unknown engine " + engineName)
			},
		})
		clock := kv.NewManualClock()
		reg := obs.NewRegistry()
		db := kv.NewCluster(c, kv.WithClock(clock), kv.WithMetrics(reg))
		cl := startRig(t, db, reg, engineName, 3)
		return cl, clock, c.Validate
	}
}

// TestFollowerReadsOverWire serves a WAL-shipping replica on its own port
// and routes the client's follower reads there with WithFollowerReads: the
// staleness contract (floor honored, rev never above the watermark) must
// survive the wire, including the ErrTooStale and absent-key shapes.
func TestFollowerReadsOverWire(t *testing.T) {
	newSys := func() (rhtm.Engine, kv.Storer) {
		s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
		return rhtm.NewTL2(s), store.New(s, store.Options{ArenaWords: 1 << 14})
	}
	eng, st := newSys()
	stg := wal.NewMemStorage()
	dev, err := stg.Device("wal")
	if err != nil {
		t.Fatal(err)
	}
	primary, err := kv.OpenLocal(eng, st, dev)
	if err != nil {
		t.Fatal(err)
	}
	g, err := repl.NewLocalGroup(primary, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	reng, rst := newSys()
	f, err := g.AddLocalReplica(reng, rst)
	if err != nil {
		t.Fatal(err)
	}

	// Primary and replica each get their own server; the client dials the
	// primary and learns the replica address for follower routing.
	psrv := server.New(primary)
	paddr, err := psrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.Close()
	rsrv := server.New(f.DB())
	raddr, err := rsrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()
	cl, err := client.Dial(paddr.String(), client.WithConns(2),
		client.WithFollowerReads(raddr.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var floor kv.Revision
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("fk-%02d", i))
		if err := cl.Put(k, []byte(fmt.Sprintf("fv-%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, rev, err := cl.GetRev(k); err != nil {
			t.Fatal(err)
		} else if rev > floor {
			floor = rev
		}
	}
	if err := f.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("fk-%02d", i))
		v, rev, wm, err := cl.ReadAt(k, floor)
		if err != nil {
			t.Fatalf("ReadAt(%s, %d): %v", k, floor, err)
		}
		if !bytes.Equal(v, []byte(fmt.Sprintf("fv-%d", i))) {
			t.Fatalf("ReadAt(%s): value %q", k, v)
		}
		if rev > wm {
			t.Fatalf("ReadAt(%s): rev %d above watermark %d", k, rev, wm)
		}
	}
	// Absence at a watermark is a fact, not a failure: wm still travels.
	if _, _, wm, err := cl.FollowerGet([]byte("fk-missing")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("missing key: err = %v", err)
	} else if wm == 0 {
		t.Fatal("missing key: watermark lost on the absent path")
	}
	// An unreachable floor surfaces as the kv sentinel across the wire.
	if _, _, _, err := cl.ReadAt([]byte("fk-00"), 1<<40); !errors.Is(err, kv.ErrTooStale) {
		t.Fatalf("huge floor: err = %v, want kv.ErrTooStale", err)
	}

	// With no replica addresses the same calls fall back to the primary,
	// which serves its own follower-read surface at watermark = now.
	direct, err := client.Dial(paddr.String(), client.WithConns(1))
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	if v, rev, wm, err := direct.ReadAt([]byte("fk-00"), floor); err != nil {
		t.Fatalf("primary fallback: %v", err)
	} else if !bytes.Equal(v, []byte("fv-0")) || rev > wm {
		t.Fatalf("primary fallback: v=%q rev=%d wm=%d", v, rev, wm)
	}
}

// TestNetDBConformance runs the full shared battery — oracle, race,
// transfer, batch, scan snapshot, CAS, leases, watches (including the
// coalescing overflow case), metrics, and tracing — with the network
// client as the kv.DB under test, against both backends. The wire is real
// TCP on loopback; nothing is mocked.
func TestNetDBConformance(t *testing.T) {
	dbtest.RunDB(t, "Net/Local/TL2", netLocalFactory("TL2", 4, 0))
	dbtest.RunDB(t, "Net/Local/RH1", netLocalFactory("RH1", 4, 10))
	dbtest.RunDB(t, "Net/Cluster2/RH1", netClusterFactory("RH1", 2, 20))
}
