package client_test

import (
	"errors"
	"testing"

	"rhtm"
	"rhtm/client"
	"rhtm/cluster"
	"rhtm/internal/enginetest/dbtest"
	"rhtm/kv"
	"rhtm/obs"
	"rhtm/server"
	"rhtm/store"
)

// startRig serves db on an ephemeral port and dials a pooled client,
// wiring both into the test's cleanup in drain order (client first).
func startRig(t *testing.T, db kv.DB, reg *obs.Registry, engine string, conns int) *client.Client {
	t.Helper()
	srv := server.New(db, server.WithMetrics(reg), server.WithEngineName(engine))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("server start: %v", err)
	}
	cl, err := client.Dial(addr.String(), client.WithConns(conns))
	if err != nil {
		srv.Close()
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() {
		cl.Close()
		srv.Close()
	})
	return cl
}

// netLocalFactory is the client→server→Local rig: a sharded store-backed
// DB behind a real TCP server, the client standing in as the kv.DB under
// test. The server shares the DB's registry so server.* instruments ride
// in the same Metrics snapshots the battery asserts on.
func netLocalFactory(engineName string, shards, inject int) dbtest.DBFactory {
	return func(t *testing.T) (kv.DB, *kv.ManualClock, func() error) {
		s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
		var eng rhtm.Engine
		switch engineName {
		case "RH1":
			eng = rhtm.NewRH1(s, rhtm.RH1Options{MixPercent: 100, InjectAbortPercent: inject})
		case "TL2":
			eng = rhtm.NewTL2(s)
		default:
			t.Fatalf("unknown engine %q", engineName)
		}
		clock := kv.NewManualClock()
		reg := obs.NewRegistry()
		sh := store.NewSharded(s, 4, store.Options{ArenaWords: 1 << 13})
		db := kv.NewLocal(eng, sh, kv.WithClock(clock), kv.WithMetrics(reg))
		cl := startRig(t, db, reg, engineName, 3)
		return cl, clock, sh.Validate
	}
}

// netClusterFactory is the client→server→ClusterDB rig: the same wire
// front end over the 2PC coordinator, with injected hardware aborts
// exercising the fallback paths under network-shaped load.
func netClusterFactory(engineName string, systems, inject int) dbtest.DBFactory {
	return func(t *testing.T) (kv.DB, *kv.ManualClock, func() error) {
		c := cluster.MustNew(cluster.Config{
			Systems:    systems,
			DataWords:  1 << 15,
			ArenaWords: 1 << 13,
			NewEngine: func(s *rhtm.System) (rhtm.Engine, error) {
				switch engineName {
				case "RH1":
					return rhtm.NewRH1(s, rhtm.RH1Options{MixPercent: 100, InjectAbortPercent: inject}), nil
				case "TL2":
					return rhtm.NewTL2(s), nil
				}
				return nil, errors.New("unknown engine " + engineName)
			},
		})
		clock := kv.NewManualClock()
		reg := obs.NewRegistry()
		db := kv.NewCluster(c, kv.WithClock(clock), kv.WithMetrics(reg))
		cl := startRig(t, db, reg, engineName, 3)
		return cl, clock, c.Validate
	}
}

// TestNetDBConformance runs the full shared battery — oracle, race,
// transfer, batch, scan snapshot, CAS, leases, watches (including the
// coalescing overflow case), metrics, and tracing — with the network
// client as the kv.DB under test, against both backends. The wire is real
// TCP on loopback; nothing is mocked.
func TestNetDBConformance(t *testing.T) {
	dbtest.RunDB(t, "Net/Local/TL2", netLocalFactory("TL2", 4, 0))
	dbtest.RunDB(t, "Net/Local/RH1", netLocalFactory("RH1", 4, 10))
	dbtest.RunDB(t, "Net/Cluster2/RH1", netClusterFactory("RH1", 2, 20))
}
