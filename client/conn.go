package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"rhtm/server/wire"
)

// netConn is one pooled connection: a write path serialized by mutex, a
// reader goroutine that matches response frames to waiters by id, and a
// terminal-error latch that fails everything in flight when the
// connection dies.
type netConn struct {
	nc net.Conn

	wmu  sync.Mutex // serializes frame writes
	wbuf []byte

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]*waiter

	dead    chan struct{}
	errOnce sync.Once
	termErr error
}

// waiter is one in-flight request. Unary requests complete through ch;
// scans accumulate chunked Entries frames first; watch subscriptions stay
// registered for the stream's lifetime and route through their pump.
type waiter struct {
	ch      chan wire.Msg
	scan    bool
	entries []wire.Entry
	wp      *watchPump
}

func dialConn(addr string, timeout time.Duration) (*netConn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	cn := &netConn{
		nc:      nc,
		pending: make(map[uint64]*waiter),
		dead:    make(chan struct{}),
	}
	go cn.readLoop()
	return cn, nil
}

// close latches err as the terminal error and cuts the socket; the reader
// exits and fails every in-flight waiter.
func (cn *netConn) close(err error) {
	cn.fail(err)
	cn.nc.Close()
}

// fail latches the terminal error and wakes everyone selecting on dead.
func (cn *netConn) fail(err error) {
	cn.errOnce.Do(func() {
		cn.termErr = err
		close(cn.dead)
	})
}

// err returns the terminal error (only valid after dead is closed).
func (cn *netConn) err() error { return cn.termErr }

// register allocates a request id for w.
func (cn *netConn) register(w *waiter) uint64 {
	cn.mu.Lock()
	cn.seq++
	id := cn.seq
	cn.pending[id] = w
	cn.mu.Unlock()
	return id
}

func (cn *netConn) unregister(id uint64) {
	cn.mu.Lock()
	delete(cn.pending, id)
	cn.mu.Unlock()
}

// write encodes and sends one frame. Holding the mutex across the socket
// write keeps frames whole; pipelining comes from many goroutines
// interleaving whole frames, not bytes.
func (cn *netConn) write(m wire.Msg) error {
	select {
	case <-cn.dead:
		return cn.termErr
	default:
	}
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	b, err := wire.Encode(cn.wbuf[:0], m)
	if err != nil {
		return err
	}
	cn.wbuf = b
	if _, err := cn.nc.Write(b); err != nil {
		cn.fail(fmt.Errorf("client: write: %w", err))
		cn.nc.Close()
		return cn.termErr
	}
	return nil
}

// roundTrip sends one unary request and waits for its response.
func (cn *netConn) roundTrip(m wire.Msg) (wire.Msg, error) {
	w := &waiter{ch: make(chan wire.Msg, 1)}
	m.ID = cn.register(w)
	if err := cn.write(m); err != nil {
		cn.unregister(m.ID)
		return wire.Msg{}, err
	}
	select {
	case r := <-w.ch:
		if r.Kind == wire.KindErr {
			return wire.Msg{}, wire.ErrOf(r.Code, r.Text)
		}
		return r, nil
	case <-cn.dead:
		return wire.Msg{}, cn.termErr
	}
}

// scan sends one Scan request and collects the chunked response. The
// returned frame is the final one with all chunks' entries merged in — so
// the caller also sees the final frame's trace stamp.
func (cn *netConn) scan(m wire.Msg) (wire.Msg, error) {
	w := &waiter{ch: make(chan wire.Msg, 1), scan: true}
	m.ID = cn.register(w)
	if err := cn.write(m); err != nil {
		cn.unregister(m.ID)
		return wire.Msg{}, err
	}
	select {
	case r := <-w.ch:
		if r.Kind == wire.KindErr {
			return wire.Msg{}, wire.ErrOf(r.Code, r.Text)
		}
		return r, nil
	case <-cn.dead:
		return wire.Msg{}, cn.termErr
	}
}

// readLoop matches response frames to waiters until the connection dies,
// then fails everything in flight. Watch frames route to their pump's
// bounded queue without ever blocking the reader.
func (cn *netConn) readLoop() {
	br := bufio.NewReaderSize(cn.nc, 32<<10)
	for {
		// Fresh buffer per frame: decoded messages escape to waiters.
		var frame []byte
		m, err := wire.ReadMsg(br, &frame)
		if err != nil {
			cn.fail(fmt.Errorf("client: connection lost: %w", err))
			cn.nc.Close()
			break
		}
		cn.mu.Lock()
		w := cn.pending[m.ID]
		switch {
		case w == nil:
			// Late frame for an abandoned id (e.g. a watch already torn
			// down): drop it.
			cn.mu.Unlock()
		case w.wp != nil:
			if m.Kind == wire.KindWatchEnd || m.Kind == wire.KindErr {
				delete(cn.pending, m.ID)
			}
			cn.mu.Unlock()
			w.wp.deliver(m)
		case w.scan && m.Kind == wire.KindEntries && m.Flags&wire.FlagFinal == 0:
			w.entries = append(w.entries, m.Entries...)
			cn.mu.Unlock()
		default:
			delete(cn.pending, m.ID)
			cn.mu.Unlock()
			if w.scan && m.Kind == wire.KindEntries {
				m.Entries = append(w.entries, m.Entries...)
			}
			w.ch <- m
		}
	}
	// Terminal: watch pumps learn through dead; unary waiters select on
	// dead themselves. Nothing further arrives, so just drop the map.
	cn.mu.Lock()
	cn.pending = make(map[uint64]*waiter)
	cn.mu.Unlock()
}
