// Package client is the Go client for the network front end (package
// server): a connection-pooled, pipelined implementation of the kv.DB
// surface over the server/wire protocol. Every call is a request frame
// matched to its response by id, so any number of goroutines share one
// connection without head-of-line blocking; the pool spreads independent
// callers across connections round-robin.
//
// Closure transactions (Update) run the closure client-side against an
// optimistic read cache: each first read of a key is one GetRev round
// trip whose revision is recorded as a commit condition, writes buffer
// locally, and commit ships conditions plus writes as one Txn frame the
// server validates and applies atomically. A failed validation surfaces
// as kv.ErrConflict and the client re-runs the closure against fresh
// reads — the same optimistic loop the in-process backends run, moved to
// the edge. Watches are server-push streams re-exposed as kv.Watch
// channels with the same bounded-queue, coalesce-then-EventLost overflow
// contract on the client side.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rhtm/kv"
	"rhtm/obs"
	"rhtm/server/wire"
)

// ErrClosed is returned by every call after Close.
var ErrClosed = errors.New("client: closed")

// Option configures a Client.
type Option func(*options)

type options struct {
	conns       int
	dialTimeout time.Duration
	followers   []string
	traceSample int
}

// WithConns sets the connection pool size (default 2).
func WithConns(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.conns = n
		}
	}
}

// WithDialTimeout bounds each connection attempt (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) { o.dialTimeout = d }
}

// WithFollowerReads adds replica servers to the pool. FollowerGet and
// ReadAt route to them round-robin; every other call still goes to the
// primary. With no replica addresses configured, follower reads fall back
// to the primary pool (the primary is trivially a follower of itself at
// watermark = now).
func WithFollowerReads(addrs ...string) Option {
	return func(o *options) { o.followers = append(o.followers, addrs...) }
}

// WithTraceSampling traces one request in every n end to end: the sampled
// frame carries FlagTraced plus a client-chosen trace id, the server
// records the request's server-side stages into its flight recorder under
// that id, and the client records the net stage (round trip minus the
// server's echoed handling time) into its own recorder under the same id.
// n <= 0 (the default) disables sampling; the disabled path is a single
// predicted branch per request.
func WithTraceSampling(n int) Option {
	return func(o *options) { o.traceSample = n }
}

// Client implements kv.DB over a pool of server connections.
type Client struct {
	conns     []*netConn
	next      atomic.Uint64
	followers []*netConn
	fnext     atomic.Uint64
	engine    string
	trc       atomic.Pointer[tracerBox]

	// sampler/flight/traceID implement WithTraceSampling: the sampler
	// picks requests, traceID names them on the wire, and the flight
	// recorder retains the client-observed side of each trace.
	sampler *obs.Sampler
	flight  *obs.Flight
	traceID atomic.Uint64

	watchWG sync.WaitGroup
	clock   kv.Clock
	closed  atomic.Bool
}

type tracerBox struct{ t obs.Tracer }

// Dial connects n pooled connections to addr and performs the Hello
// handshake (learning the serving engine's name for tracer spans).
func Dial(addr string, opts ...Option) (*Client, error) {
	o := options{conns: 2, dialTimeout: 5 * time.Second}
	for _, opt := range opts {
		opt(&o)
	}
	c := &Client{
		sampler: obs.NewSampler(o.traceSample),
		flight:  obs.NewFlight(0),
	}
	c.trc.Store(&tracerBox{})
	c.clock = &remoteClock{c: c}
	for i := 0; i < o.conns; i++ {
		cn, err := dialConn(addr, o.dialTimeout)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, cn)
	}
	for _, addr := range o.followers {
		cn, err := dialConn(addr, o.dialTimeout)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.followers = append(c.followers, cn)
	}
	hello, err := c.conns[0].roundTrip(wire.Msg{Kind: wire.KindHello})
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("client: hello: %w", err)
	}
	c.engine = string(hello.Value)
	return c, nil
}

// Close cuts every pooled connection; in-flight calls fail promptly and
// open watch channels close.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, cn := range c.conns {
		cn.close(ErrClosed)
	}
	for _, cn := range c.followers {
		cn.close(ErrClosed)
	}
	return nil
}

// Engine returns the serving engine's name from the Hello handshake.
func (c *Client) Engine() string { return c.engine }

// SetTracer installs (or, with nil, removes) the per-transaction tracer.
// Spans are built client-side: one per closure attempt, stamped with the
// served engine's name and the commit revision the server reported.
func (c *Client) SetTracer(t obs.Tracer) { c.trc.Store(&tracerBox{t}) }

func (c *Client) tracer() obs.Tracer { return c.trc.Load().t }

// pick spreads callers across the pool round-robin.
func (c *Client) pick() *netConn {
	return c.conns[c.next.Add(1)%uint64(len(c.conns))]
}

// do runs one unary round trip on a pooled connection, sampling it for
// end-to-end tracing when WithTraceSampling is armed.
func (c *Client) do(m wire.Msg) (wire.Msg, error) {
	if c.closed.Load() {
		return wire.Msg{}, ErrClosed
	}
	return c.roundTripT(c.pick(), m)
}

// doFollower runs one unary round trip on a replica connection, falling
// back to the primary pool when no replicas are configured.
func (c *Client) doFollower(m wire.Msg) (wire.Msg, error) {
	if c.closed.Load() {
		return wire.Msg{}, ErrClosed
	}
	if len(c.followers) == 0 {
		return c.roundTripT(c.pick(), m)
	}
	return c.roundTripT(c.followers[c.fnext.Add(1)%uint64(len(c.followers))], m)
}

// beginTrace makes the sampling decision for one request. When sampled,
// it opens the client-side trace and stamps the frame so the server opens
// the matching server-side trace under the same id.
func (c *Client) beginTrace(m *wire.Msg) *obs.Trace {
	if !c.sampler.Sample() {
		return nil
	}
	tr := c.flight.NewTrace(c.traceID.Add(1), m.Kind.String())
	m.Flags |= wire.FlagTraced
	m.Trace = tr.ID()
	return tr
}

// finishTrace records the net stage — the observed round trip minus the
// handling time the server echoed on the traced response — and finishes
// the client-side trace.
func (c *Client) finishTrace(tr *obs.Trace, r wire.Msg, err error) {
	net := tr.Elapsed()
	if srv := time.Duration(r.Trace); r.Flags&wire.FlagTraced != 0 && srv > 0 && srv < net {
		net -= srv
	}
	tr.Stage(obs.StageNet, net)
	tr.Finish(err)
}

// roundTripT is roundTrip with the sampling decision wrapped around it.
func (c *Client) roundTripT(cn *netConn, m wire.Msg) (wire.Msg, error) {
	tr := c.beginTrace(&m)
	if tr == nil {
		return cn.roundTrip(m)
	}
	r, err := cn.roundTrip(m)
	c.finishTrace(tr, r, err)
	return r, err
}

// Flight returns the client-side flight recorder sampled requests are
// retained in (net-stage timings keyed by the on-wire trace ids).
func (c *Client) Flight() *obs.Flight { return c.flight }

// AdminMetrics fetches the server's metrics snapshot (KindMetrics) —
// Metrics with the error surfaced instead of swallowed.
func (c *Client) AdminMetrics() (obs.Snapshot, error) {
	r, err := c.do(wire.Msg{Kind: wire.KindMetrics})
	if err != nil {
		return obs.Snapshot{}, err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(r.Value, &snap); err != nil {
		return obs.Snapshot{}, fmt.Errorf("client: metrics body: %w", err)
	}
	return snap, nil
}

// AdminTraces dumps the server's flight recorder (KindTraceDump): per
// request kind, the slowest traces, recent errors, recent traces, and
// per-stage latency quantiles.
func (c *Client) AdminTraces() (obs.FlightDump, error) {
	r, err := c.do(wire.Msg{Kind: wire.KindTraceDump})
	if err != nil {
		return obs.FlightDump{}, err
	}
	var d obs.FlightDump
	if err := json.Unmarshal(r.Value, &d); err != nil {
		return obs.FlightDump{}, fmt.Errorf("client: trace dump body: %w", err)
	}
	return d, nil
}

// AdminHealth fetches the server's health view (KindHealth): uptime,
// connection and request counts, and per-replica watermarks and lag.
func (c *Client) AdminHealth() (wire.Health, error) {
	r, err := c.do(wire.Msg{Kind: wire.KindHealth})
	if err != nil {
		return wire.Health{}, err
	}
	var h wire.Health
	if err := json.Unmarshal(r.Value, &h); err != nil {
		return wire.Health{}, fmt.Errorf("client: health body: %w", err)
	}
	return h, nil
}

// FollowerGet implements kv.FollowerReader: a read served by a replica,
// returning the value's revision and the replica's applied watermark (the
// revision up to which it has provably replayed the primary's log).
func (c *Client) FollowerGet(key []byte) ([]byte, kv.Revision, kv.Revision, error) {
	return c.ReadAt(key, 0)
}

// ReadAt implements kv.FollowerReader: like FollowerGet but the replica
// rejects the read with kv.ErrTooStale unless its watermark has reached
// floor, so the caller can demand read-your-writes against a revision it
// learned from the primary.
func (c *Client) ReadAt(key []byte, floor kv.Revision) ([]byte, kv.Revision, kv.Revision, error) {
	if kv.IsReservedKey(key) {
		return nil, 0, 0, kv.ErrReservedKey
	}
	r, err := c.doFollower(wire.Msg{Kind: wire.KindFollowerGet, Key: key, Rev: floor})
	if err != nil {
		return nil, 0, 0, err
	}
	if r.Flags&wire.FlagAbsent != 0 {
		return nil, 0, r.Lease, kv.ErrNotFound
	}
	return r.Value, r.Rev, r.Lease, nil
}

// Get implements kv.DB.
func (c *Client) Get(key []byte) ([]byte, error) {
	if kv.IsReservedKey(key) {
		return nil, kv.ErrReservedKey
	}
	r, err := c.do(wire.Msg{Kind: wire.KindGet, Key: key})
	if err != nil {
		return nil, err
	}
	return r.Value, nil
}

// GetRev implements kv.DB.
func (c *Client) GetRev(key []byte) ([]byte, kv.Revision, error) {
	if kv.IsReservedKey(key) {
		return nil, 0, kv.ErrReservedKey
	}
	r, err := c.do(wire.Msg{Kind: wire.KindGetRev, Key: key})
	if err != nil {
		return nil, 0, err
	}
	if r.Flags&wire.FlagAbsent != 0 {
		return nil, 0, kv.ErrNotFound
	}
	return r.Value, r.Rev, nil
}

// Put implements kv.DB.
func (c *Client) Put(key, value []byte, opts ...kv.PutOption) error {
	if kv.IsReservedKey(key) {
		return kv.ErrReservedKey
	}
	_, err := c.do(wire.Msg{Kind: wire.KindPut, Key: key, Value: value, Lease: kv.LeaseOf(opts...)})
	return err
}

// PutIf implements kv.DB.
func (c *Client) PutIf(key, value []byte, rev kv.Revision, opts ...kv.PutOption) error {
	if kv.IsReservedKey(key) {
		return kv.ErrReservedKey
	}
	_, err := c.do(wire.Msg{Kind: wire.KindPutIf, Key: key, Value: value, Rev: rev, Lease: kv.LeaseOf(opts...)})
	return err
}

// Delete implements kv.DB.
func (c *Client) Delete(key []byte) error {
	if kv.IsReservedKey(key) {
		return kv.ErrReservedKey
	}
	_, err := c.do(wire.Msg{Kind: wire.KindDelete, Key: key})
	return err
}

// DeleteIf implements kv.DB.
func (c *Client) DeleteIf(key []byte, rev kv.Revision) error {
	if kv.IsReservedKey(key) {
		return kv.ErrReservedKey
	}
	_, err := c.do(wire.Msg{Kind: wire.KindDeleteIf, Key: key, Rev: rev})
	return err
}

// Batch implements kv.DB: the ops travel as one frame and execute as one
// server-side transaction.
func (c *Client) Batch(ops []kv.Op) ([]kv.OpResult, error) {
	r, err := c.do(wire.Msg{Kind: wire.KindBatch, Ops: ops})
	if err != nil {
		return nil, err
	}
	results := make([]kv.OpResult, len(r.Results))
	for i, res := range r.Results {
		results[i] = kv.OpResult{Value: res.Value, Err: wire.ErrOf(res.Code, "")}
	}
	return results, nil
}

// Scan implements kv.DB: the server streams the snapshot as chunked
// frames; the returned iterator walks the collected result.
func (c *Client) Scan(start, end []byte, limit int) kv.Iterator {
	if c.closed.Load() {
		return &sliceIter{err: ErrClosed}
	}
	m := wire.Msg{Kind: wire.KindScan, Key: start, End: end, Rev: uint64(limit)}
	tr := c.beginTrace(&m)
	r, err := c.pick().scan(m)
	if tr != nil {
		c.finishTrace(tr, r, err)
	}
	if err != nil {
		return &sliceIter{err: err}
	}
	return &sliceIter{entries: r.Entries}
}

// Grant implements kv.DB.
func (c *Client) Grant(ttl uint64) (kv.LeaseID, error) {
	r, err := c.do(wire.Msg{Kind: wire.KindGrant, Rev: ttl})
	if err != nil {
		return 0, err
	}
	return r.Rev, nil
}

// KeepAlive implements kv.DB.
func (c *Client) KeepAlive(id kv.LeaseID) error {
	_, err := c.do(wire.Msg{Kind: wire.KindKeepAlive, Lease: id})
	return err
}

// Revoke implements kv.DB.
func (c *Client) Revoke(id kv.LeaseID) error {
	_, err := c.do(wire.Msg{Kind: wire.KindRevoke, Lease: id})
	return err
}

// ExpireLeases implements kv.DB.
func (c *Client) ExpireLeases() (int, error) {
	r, err := c.do(wire.Msg{Kind: wire.KindExpire})
	if err != nil {
		return 0, err
	}
	return int(r.Rev), nil
}

// Clock implements kv.DB: reading it costs one round trip per Now.
func (c *Client) Clock() kv.Clock { return c.clock }

type remoteClock struct{ c *Client }

func (rc *remoteClock) Now() uint64 {
	r, err := rc.c.do(wire.Msg{Kind: wire.KindClockNow})
	if err != nil {
		return 0
	}
	return r.Rev
}

// Checkpoint implements kv.DB.
func (c *Client) Checkpoint() error {
	_, err := c.do(wire.Msg{Kind: wire.KindCheckpoint})
	return err
}

// Metrics implements kv.DB: the server's snapshot travels as JSON (the
// obs.Snapshot wire form), so the client sees the exact flat schema the
// server-side DB reports — including the server.* instruments when the
// server shares the DB's registry.
func (c *Client) Metrics() obs.Snapshot {
	r, err := c.do(wire.Msg{Kind: wire.KindMetrics})
	if err != nil {
		return obs.Snapshot{}
	}
	var snap obs.Snapshot
	if json.Unmarshal(r.Value, &snap) != nil {
		return obs.Snapshot{}
	}
	return snap
}

// WaitWatchIdle blocks until every watch channel this client handed out
// has closed and the server's watch machinery has quiesced — the remote
// form of the backends' WaitWatchIdle test hook.
func (c *Client) WaitWatchIdle() {
	c.watchWG.Wait()
	for _, cn := range c.conns {
		cn.roundTrip(wire.Msg{Kind: wire.KindWatchIdle})
	}
}

// sliceIter walks a materialized scan result.
type sliceIter struct {
	entries []wire.Entry
	i       int
	err     error
}

func (it *sliceIter) Next() bool {
	if it.err != nil || it.i >= len(it.entries) {
		return false
	}
	it.i++
	return true
}

func (it *sliceIter) Key() []byte   { return it.entries[it.i-1].Key }
func (it *sliceIter) Value() []byte { return it.entries[it.i-1].Value }
func (it *sliceIter) Err() error    { return it.err }

var _ kv.DB = (*Client)(nil)
var _ kv.FollowerReader = (*Client)(nil)
