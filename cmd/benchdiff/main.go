// Command benchdiff gates CI on the committed bench trajectory: it
// compares a freshly generated BENCH JSONL file against the committed
// baseline and exits nonzero when any measured point's architectural
// metric (ops/kinterval for cluster runs, ops/kacc otherwise) dropped by
// more than the threshold.
//
// Usage:
//
//	benchdiff [-threshold 0.25] BASELINE.json FRESH.json
package main

import (
	"flag"
	"fmt"
	"os"

	"rhtm/internal/benchdiff"
)

func main() {
	threshold := flag.Float64("threshold", 0.25, "tolerated fractional drop per point (0.25 = 25%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.25] BASELINE.json FRESH.json")
		os.Exit(2)
	}
	if *threshold <= 0 || *threshold >= 1 {
		fmt.Fprintf(os.Stderr, "benchdiff: -threshold must be in (0,1), got %g\n", *threshold)
		os.Exit(2)
	}
	base, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fresh, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline %s has no rows\n", flag.Arg(0))
		os.Exit(2)
	}
	regs := benchdiff.Compare(base, fresh, *threshold)
	if len(regs) == 0 {
		fmt.Printf("benchdiff: %d baseline points, none regressed more than %.0f%%\n",
			len(base), 100**threshold)
		return
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %d of %d points regressed more than %.0f%%:\n",
		len(regs), len(base), 100**threshold)
	for _, rg := range regs {
		fmt.Fprintln(os.Stderr, " ", rg)
	}
	os.Exit(1)
}

func parseFile(path string) ([]benchdiff.Row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %w", err)
	}
	defer f.Close()
	return benchdiff.ParseRows(f)
}
