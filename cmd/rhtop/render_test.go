package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"rhtm"
	"rhtm/client"
	"rhtm/kv"
	"rhtm/obs"
	"rhtm/server"
	"rhtm/server/wire"
	"rhtm/store"
	"rhtm/wal"
)

// TestRhtopSmoke is the dashboard's acceptance test: a real server with a
// WAL-backed DB and a replica-status hook, a traced client applying load,
// and two polls a beat apart. Every section the rig exercises must appear
// in the rendered frame, and the second frame's request counter must be
// strictly ahead of the first (the monotone source of the throughput
// figure).
func TestRhtopSmoke(t *testing.T) {
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
	eng := rhtm.NewTL2(s)
	sh := store.NewSharded(s, 4, store.Options{ArenaWords: 1 << 13})
	dev, err := wal.NewMemStorage().Device("wal")
	if err != nil {
		t.Fatal(err)
	}
	// One registry shared between the DB and the server, so AdminMetrics
	// snapshots carry the server.* taxonomy alongside the engine's.
	reg := obs.NewRegistry()
	db, err := kv.OpenLocal(eng, sh, dev, kv.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New(db, server.WithMetrics(reg),
		server.WithReplicaStatus(func() []wire.ReplicaHealth {
			return []wire.ReplicaHealth{{Name: "replica-0", Stream: "wal"}}
		}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := client.Dial(addr.String(), client.WithTraceSampling(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	load := func(n int) {
		for i := 0; i < n; i++ {
			if err := cl.Put([]byte(fmt.Sprintf("top-%d", i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
			if err := cl.Update(func(tx kv.Txn) error {
				return tx.Put([]byte("top-txn"), []byte{byte(i)})
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	load(8)
	first, err := Poll(cl)
	if err != nil {
		t.Fatal(err)
	}
	load(8)
	second, err := Poll(cl)
	if err != nil {
		t.Fatal(err)
	}
	// The admin polls themselves count as requests, so strict monotonicity
	// holds even without the extra load; the load makes the frame's other
	// sections non-trivial.
	if second.Health.Requests <= first.Health.Requests {
		t.Fatalf("request counter not monotone across polls: %d then %d",
			first.Health.Requests, second.Health.Requests)
	}
	if second.When.Before(first.When) {
		t.Fatalf("sample stamps out of order")
	}

	var buf bytes.Buffer
	Render(&buf, addr.String(), second, &first)
	frame := buf.String()
	for _, want := range []string{
		"rhtop — " + addr.String(), // header with the polled address
		"requests ",
		"/s)", // the throughput figure from the two-poll delta
		"engine    commits",
		"abort ratio",
		"server    req p50/p99",
		"bytes in/out",
		"wal       syncs",
		"txns/sync",
		"replica   replica-0",
		"slowest sampled requests",
		"txn", // the traced Update kind with its stage breakdown
		"put",
		"engine ", // a typed stage inside a slowest-trace line
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}

	// A first frame (no previous sample) renders without a rate and
	// without panicking on the nil window.
	buf.Reset()
	Render(&buf, addr.String(), first, nil)
	if strings.Contains(buf.String(), "/s)") {
		t.Fatalf("rate rendered without a previous sample:\n%s", buf.String())
	}
}

// TestRenderPure pins the render function's determinism over fixed inputs
// — same samples, same frame — so the dashboard stays testable without a
// live server.
func TestRenderPure(t *testing.T) {
	base := time.Unix(1000, 0)
	prev := Sample{When: base, Health: wire.Health{Requests: 100}}
	cur := Sample{
		When: base.Add(2 * time.Second),
		Snap: obs.Snapshot{
			Counters: map[string]uint64{
				obs.Name("engine.commits", "path", "fast"): 90,
				obs.Name("engine.aborts", "path", "slow"):  10,
				"server.bytes_in":  1000,
				"server.bytes_out": 2000,
			},
		},
		Health: wire.Health{
			UptimeNS: uint64(5 * time.Second), Connections: 2, Requests: 300,
			Replicas: []wire.ReplicaHealth{
				{Name: "replica-0", Stream: "wal", AppliedLSN: 9, AppliedRev: 4, LagFrames: 1},
			},
		},
	}
	var a, b bytes.Buffer
	Render(&a, "x:1", cur, &prev)
	Render(&b, "x:1", cur, &prev)
	if a.String() != b.String() {
		t.Fatalf("render not deterministic:\n%s\n---\n%s", a.String(), b.String())
	}
	for _, want := range []string{
		"requests 300 (100.0/s)", // (300-100)/2s
		"abort ratio 10.0%",
		"lag 1 frames",
	} {
		if !strings.Contains(a.String(), want) {
			t.Fatalf("frame missing %q:\n%s", want, a.String())
		}
	}
}
