package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"rhtm/obs"
	"rhtm/server/wire"
)

// Sample is one poll of the server's three admin surfaces, stamped with
// the local receive time so consecutive samples define a rate window.
type Sample struct {
	When   time.Time
	Snap   obs.Snapshot
	Dump   obs.FlightDump
	Health wire.Health
}

// Render writes one dashboard frame for cur. prev, when non-nil, is the
// previous poll of the same server and supplies the rate window: request
// throughput is the request-counter delta over the wall-clock delta. The
// function is pure over its inputs — the smoke test drives it directly.
func Render(w io.Writer, addr string, cur Sample, prev *Sample) {
	fmt.Fprintf(w, "rhtop — %s    up %s    conns %d    requests %d%s\n\n",
		addr, time.Duration(cur.Health.UptimeNS).Round(time.Millisecond),
		cur.Health.Connections, cur.Health.Requests, rate(cur, prev))

	renderEngine(w, cur.Snap)
	renderServer(w, cur.Snap)
	renderWAL(w, cur.Snap)
	renderReplicas(w, cur.Health)
	renderTraces(w, cur.Dump)
}

// rate formats the per-second request throughput between two samples.
func rate(cur Sample, prev *Sample) string {
	if prev == nil {
		return ""
	}
	dt := cur.When.Sub(prev.When).Seconds()
	if dt <= 0 || cur.Health.Requests < prev.Health.Requests {
		return ""
	}
	return fmt.Sprintf(" (%.1f/s)", float64(cur.Health.Requests-prev.Health.Requests)/dt)
}

// renderEngine shows the commit/abort taxonomy of the engine counters.
func renderEngine(w io.Writer, s obs.Snapshot) {
	var commits, aborts uint64
	var parts []string
	for _, path := range []string{"fast", "slow", "slowslow", "readonly"} {
		c := s.Counter(obs.Name("engine.commits", "path", path))
		commits += c
		parts = append(parts, fmt.Sprintf("%s=%d", path, c))
	}
	var abortParts []string
	for _, path := range []string{"fast", "slow"} {
		a := s.Counter(obs.Name("engine.aborts", "path", path))
		aborts += a
		abortParts = append(abortParts, fmt.Sprintf("%s=%d", path, a))
	}
	ratio := 0.0
	if commits+aborts > 0 {
		ratio = 100 * float64(aborts) / float64(commits+aborts)
	}
	fmt.Fprintf(w, "engine    commits %s    aborts %s    abort ratio %.1f%%\n",
		strings.Join(parts, " "), strings.Join(abortParts, " "), ratio)
}

// renderServer shows the wire path: request latency quantiles, batch fill,
// and byte counters.
func renderServer(w io.Writer, s obs.Snapshot) {
	req, okReq := s.Histograms["server.request_ns"]
	fill, okFill := s.Histograms["server.batch_fill"]
	if !okReq && !okFill {
		return
	}
	fmt.Fprint(w, "server    ")
	if okReq && req.Count > 0 {
		fmt.Fprintf(w, "req p50/p99 %s/%s    ",
			dur(req.P(0.50)), dur(req.P(0.99)))
	}
	if okFill && fill.Count > 0 {
		fmt.Fprintf(w, "batch fill avg %.1f p99 %d    ",
			float64(fill.Sum)/float64(fill.Count), fill.P(0.99))
	}
	fmt.Fprintf(w, "bytes in/out %d/%d\n",
		s.Counter("server.bytes_in"), s.Counter("server.bytes_out"))
}

// renderWAL shows group-commit amortization and the sync cadence.
func renderWAL(w io.Writer, s obs.Snapshot) {
	syncs := s.Counter("wal.syncs")
	if syncs == 0 {
		return
	}
	txns := s.Counter("wal.txns")
	fmt.Fprintf(w, "wal       syncs %d    txns/sync %.1f", syncs, float64(txns)/float64(syncs))
	if h, ok := s.Histograms["wal.sync_interval_ns"]; ok && h.Count > 0 {
		fmt.Fprintf(w, "    sync interval p50 %s p99 %s", dur(h.P(0.50)), dur(h.P(0.99)))
	}
	fmt.Fprintln(w)
}

// renderReplicas shows one row per replica stream with its apply lag.
func renderReplicas(w io.Writer, h wire.Health) {
	for _, r := range h.Replicas {
		fmt.Fprintf(w, "replica   %s    stream %s    lsn %d    rev %d    lag %d frames\n",
			r.Name, r.Stream, r.AppliedLSN, r.AppliedRev, r.LagFrames)
	}
}

// renderTraces shows the flight recorder: per kind the sampled count,
// errors, the engine/net stage p99, and the slowest retained trace with
// its stage breakdown.
func renderTraces(w io.Writer, d obs.FlightDump) {
	if len(d.Kinds) == 0 {
		return
	}
	kinds := make([]string, 0, len(d.Kinds))
	for k := range d.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintln(w, "\nslowest sampled requests")
	for _, kind := range kinds {
		kd := d.Kinds[kind]
		fmt.Fprintf(w, "  %-8s n=%d err=%d", kind, kd.Count, kd.Errors)
		if len(kd.Slowest) > 0 {
			t := kd.Slowest[0]
			fmt.Fprintf(w, "  worst %s [%s]",
				dur(t.WallNS), stageLine(t))
		}
		fmt.Fprintln(w)
	}
}

// stageLine compresses a trace's stages into "name dur" pairs.
func stageLine(t obs.TraceSnapshot) string {
	parts := make([]string, 0, len(t.Stages))
	for _, st := range t.Stages {
		parts = append(parts, fmt.Sprintf("%s %s", st.Name, dur(uint64(st.Dur))))
	}
	return strings.Join(parts, ", ")
}

// dur renders a nanosecond quantity at µs-level precision.
func dur(ns uint64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
