// Command rhtop is a live terminal dashboard over a running rhtm server's
// admin RPCs (DESIGN.md §14). Each tick it polls the three admin surfaces
// — Metrics (the shared obs registry: engine.*, store.*, wal.*, server.*),
// TraceDump (the flight recorder's slowest/recent sampled traces with
// their per-stage quantiles), and Health (uptime, connections, request
// totals, replica apply lag) — and renders one frame: request throughput
// from consecutive request-counter deltas, the engine's commit/abort
// taxonomy, wire latency quantiles and batch fill, WAL group-commit
// amortization and sync cadence, per-replica lag, and the slowest sampled
// requests broken down by typed stage.
//
// Usage:
//
//	rhtop [-interval 1s] [-n 0] [-plain] host:port
//
// -n bounds the number of frames (0 = run until interrupted); -plain
// appends frames instead of redrawing in place (for logs and pipes).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rhtm/client"
)

func main() {
	var (
		interval = flag.Duration("interval", time.Second, "poll interval")
		frames   = flag.Int("n", 0, "number of frames to render (0 = until interrupted)")
		plain    = flag.Bool("plain", false, "append frames instead of redrawing in place")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rhtop [flags] host:port")
		flag.PrintDefaults()
		os.Exit(2)
	}
	addr := flag.Arg(0)

	cl, err := client.Dial(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rhtop:", err)
		os.Exit(1)
	}
	defer cl.Close()

	var prev *Sample
	for i := 0; *frames == 0 || i < *frames; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		cur, err := Poll(cl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rhtop:", err)
			os.Exit(1)
		}
		if !*plain {
			fmt.Print("\033[H\033[2J") // cursor home + clear screen
		}
		Render(os.Stdout, addr, cur, prev)
		prev = &cur
	}
}

// Poll fetches one Sample over the client's admin RPCs.
func Poll(cl *client.Client) (Sample, error) {
	snap, err := cl.AdminMetrics()
	if err != nil {
		return Sample{}, err
	}
	dump, err := cl.AdminTraces()
	if err != nil {
		return Sample{}, err
	}
	health, err := cl.AdminHealth()
	if err != nil {
		return Sample{}, err
	}
	return Sample{When: time.Now(), Snap: snap, Dump: dump, Health: health}, nil
}
