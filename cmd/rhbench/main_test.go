package main

import "testing"

func TestParseThreads(t *testing.T) {
	got, err := parseThreads("1, 2,4")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("parseThreads = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseThreads = %v, want %v", got, want)
		}
	}
}

func TestParseThreadsRejectsBadInput(t *testing.T) {
	for _, in := range []string{"", "a", "0", "-3", "1,,2"} {
		if _, err := parseThreads(in); err == nil {
			t.Errorf("parseThreads(%q) accepted", in)
		}
	}
}

func TestParsePercents(t *testing.T) {
	got, err := parsePercents("0, 10,100")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 10, 100}
	if len(got) != len(want) {
		t.Fatalf("parsePercents = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parsePercents = %v, want %v", got, want)
		}
	}
	for _, in := range []string{"", "x", "-1", "101", "5,,9"} {
		if _, err := parsePercents(in); err == nil {
			t.Errorf("parsePercents(%q) accepted", in)
		}
	}
}
