// Command rhbench regenerates every table and figure of the paper's
// evaluation section (and the extension experiments in DESIGN.md) on the
// simulated machine.
//
// Usage:
//
//	rhbench [flags] <experiment>
//
// Experiments:
//
//	fig1          RB-Tree 20%% writes: HTM / Standard HyTM / TL2 / RH1 Fast
//	fig2a         RB-Tree 20%% writes incl. RH1 Mixed 10/100
//	fig2b         RB-Tree 80%% writes incl. RH1 Mixed 10/100
//	fig2c         single-thread speedup vs TL2 (20%% and 80%%)
//	tab1          single-thread breakdown table, 20%% writes
//	tab2          single-thread breakdown table, 80%% writes
//	fig3a         Hash Table 20%% writes
//	fig3b         Sorted List 5%% writes
//	fig3c         Random Array speedup matrix (RH1 Fast vs Standard HyTM)
//	ext-clock     GV6 vs GV5 clock ablation
//	ext-capacity  slow-path transaction-length extension
//	ext-hybrids   RH1 vs Standard HyTM / Hybrid NoRec / Phased TM
//	ycsb-a        sharded KV store, YCSB-A (50%% reads / 50%% updates)
//	ycsb-b        sharded KV store, YCSB-B (95%% reads)
//	ycsb-c        sharded KV store, YCSB-C (read-only)
//	ycsb-d        sharded KV store, YCSB-D (95%% latest-skewed reads / 5%% inserts)
//	ycsb-e        sharded KV store, YCSB-E (95%% short ordered scans / 5%% inserts)
//	ycsb-f        sharded KV store, YCSB-F (50%% reads / 50%% read-modify-writes)
//	ycsb-e-index  YCSB-E re-served by the table/ record layer from a
//	              secondary index: ordered bucket scans the planner bounds
//	              at the limit, inserts maintaining the index write-through
//	table-query   planner-driven table mix: 45%% point gets, 25%% index
//	              range scans, 20%% covering order-limit reads, 10%% upsert
//	              churn moving index entries (-tables/-idxsel shape it)
//	index-lookup  the selective bucket-equality query served twice from
//	              the same rows — planner-picked index scan vs forced full
//	              scan — quantifying what the secondary index buys
//	batch         YCSB-A with single-key ops grouped into kv.DB.Batch
//	              transactions, swept over -batchsizes (amortization experiment)
//	cluster-ycsb-a/b/c/d/e/f
//	              share-nothing multi-System cluster running the YCSB mix,
//	              swept over -systems × -cross (cross-System txn fraction)
//	cluster-bank  cluster bank transfers with the conserved-total invariant
//	session-cache lease-TTL'd session cache: zipfian gets, miss = login
//	              (lease grant + leased put), virtual-time expiry churn
//	lock-service  lease-based mutual exclusion: create-only CAS acquires,
//	              guarded releases, crash-expiry reclaims, an exact
//	              virtual-time mutual-exclusion audit, and a watch stream
//	              counting the release/expiry deletes
//	cluster-session-cache, cluster-lock-service
//	              the same scenarios on the share-nothing cluster (lease
//	              records route like data keys, so revokes ride 2PC)
//	recovery      write-ahead-log recovery: log size vs cold-open replay
//	              time, with and without a midpoint checkpoint
//	net-ycsb-a/b/c/d/e/f
//	              the YCSB mix served over loopback TCP through the
//	              network client, swept over -conns connection-pool sizes
//	              (-pipeline toggles many-in-flight vs closed loop)
//	repl          YCSB-B (95%% reads) with -replicas WAL-shipping followers
//	              serving the reads at a revision watermark (-staleness
//	              bounds how far behind a follower answer may be); the
//	              K=0 point is the primary-only baseline
//	all           everything above (cluster: the -a sweep only; net: the
//	              -a sweep only)
//
// Every ycsb-*, batch, and cluster-* experiment drives the unified kv.DB
// interface (one workload suite, either data-layer backend). The ycsb-*
// experiments run on the sharded single-System store; -dist selects the
// request distribution (zipfian by default, as YCSB), -records/-vbytes/
// -shards size the store, -scanmax bounds YCSB-E scan lengths.
//
// The cluster-* experiments run against the cluster package: N fully
// independent simulated machines behind a hash router, with cross-System
// transactions under two-phase commit. Reports include the cluster scaling
// metric (ops per 1000 critical-path accesses: accesses on the busiest
// System, since independent Systems progress in parallel) and the 2PC
// counters. -systems and -cross take comma-separated sweeps.
//
// The session-cache and lock-service experiments drive the kv layer's
// coordination surface (revisions, leases, watches); -ttl and -pumpevery
// set the lease TTL (virtual ticks) and the expiry-pump cadence.
//
// -wal attaches a write-ahead log (in-memory simulated device) to any KV
// experiment: every committed transaction is group-committed to the log
// before the operation returns, and the run notes report the log counters
// (transactions per sync is the group-commit amortization). -syncevery N
// relaxes the barrier to every N transactions. The recovery experiment
// measures the other half: cold-open replay time against log size.
//
// -net serves any KV experiment over loopback TCP: the backend sits
// behind the server/ front end and the workload drives the network
// client, so the measured path includes framing, pipelining, and the
// server's cross-connection request batcher. -conns sizes the client's
// connection pool (the net-ycsb-* experiments sweep a comma-separated
// list; other experiments use the first value) and -pipeline toggles
// many-in-flight requests per connection versus a strict closed loop.
// Reports add the server.* counters (DESIGN.md §11).
//
// The repl experiment attaches -replicas (comma-separated sweep) full
// Systems to the primary's write-ahead log through repl/: each follower
// tails the log, replays every committed transaction at its original
// revision, and serves the mix's reads at its applied watermark. Reports
// add the repl.* counters (applied LSN/revision per replica, lag frames,
// apply-batch sizes) and the harness follower-read counters (served /
// stale-fallback / miss). ops/kinterval charges only the primary's
// accesses — the replicas replay in parallel — so the K>0 rows measure
// the read offload against the K=0 baseline.
//
// -json FILE appends one machine-readable JSON line per measured point
// (engine, workload, threads, ops, ops/kacc, ops/kinterval, abort ratio,
// notes) to FILE — the format of the BENCH_*.json trajectory files; "-"
// writes to stdout. CI's bench-smoke step archives one as an artifact.
// -metrics additionally embeds each run's structured counter map (the
// flattened obs snapshot: engine.*, store.*, wal.*, cluster.*, plus the
// workload's harness.* counters) in every JSON row.
//
// -trace-sample N traces every N-th Update/Batch end to end (DESIGN.md
// §14): the flight recorder's per-stage latency quantiles (engine,
// wal_sync, the 2PC phases, replica apply — and on -net runs the client's
// net stage) join the counter map under trace.* / client.trace.*, so a
// -json -metrics row carries the full stage breakdown per point.
//
// The default scale matches the paper (100K-node tree, threads 1..20,
// 1s per point), which takes a while on a small machine; use -quick for a
// reduced sweep or the individual -nodes/-threads/-dur flags.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"rhtm/internal/harness"
)

func main() {
	var (
		dur     = flag.Duration("dur", time.Second, "measurement duration per point")
		ops     = flag.Int("ops", 0, "ops per thread (overrides -dur; deterministic)")
		nodes   = flag.Int("nodes", 100_000, "red-black tree size")
		elems   = flag.Int("elems", 10_000, "hash table size")
		list    = flag.Int("list", 1_000, "sorted list size")
		array   = flag.Int("array", 128*1024, "random array size (words)")
		threads = flag.String("threads", "1,2,4,6,8,10,12,14,16,18,20", "comma-separated thread sweep")
		seed    = flag.Int64("seed", 1, "base RNG seed")
		quick   = flag.Bool("quick", false, "small, fast configuration (smoke run)")
		capLim  = flag.Int("caplines", 64, "HTM footprint cap (lines) for ext-capacity")
		records = flag.Int("records", 10_000, "YCSB record count")
		vbytes  = flag.Int("vbytes", 64, "YCSB value size in bytes")
		shards  = flag.Int("shards", 8, "YCSB store shard count")
		dist    = flag.String("dist", harness.DistZipfian, "YCSB request distribution (uniform|zipfian)")
		theta   = flag.Float64("theta", 0.99, "zipfian skew for -dist zipfian")
		systems = flag.String("systems", "1,2,4", "comma-separated System counts for cluster-* experiments")
		crossPc = flag.String("cross", "0,10", "comma-separated cross-System txn percentages for cluster-* experiments")
		ckeys   = flag.Int("crosskeys", 2, "keys per cross-System transaction")
		scanMax = flag.Int("scanmax", 100, "maximum YCSB-E scan length")
		tablesF = flag.Int("tables", 1, "table count for the table mixes (ycsb-e-index / table-query)")
		idxSel  = flag.Int("idxsel", 100, "index selectivity for the table mixes: distinct bucket values per table")
		batches = flag.String("batchsizes", "1,8,64", "comma-separated batch sizes for the batch experiment")
		ttl     = flag.Int("ttl", 16, "lease TTL in virtual clock ticks (session-cache / lock-service)")
		pump    = flag.Int("pumpevery", 32, "ops between virtual-clock ticks / expiry pumps (session-cache / lock-service)")
		useNet  = flag.Bool("net", false, "serve the KV experiments over loopback TCP through the network client")
		connsF  = flag.String("conns", "1,4,16", "comma-separated client connection-pool sizes for net runs")
		pipe    = flag.Bool("pipeline", true, "allow many in-flight requests per connection in net runs (off = closed loop)")
		useWAL  = flag.Bool("wal", false, "attach a write-ahead log (in-memory device) to the KV experiments")
		syncEv  = flag.Int("syncevery", 0, "relax WAL syncs to every N logged transactions (0/1 = every group commit; needs -wal)")
		replsF  = flag.String("replicas", "0,1,2", "comma-separated WAL-shipping replica counts for the repl experiment")
		staleF  = flag.Int("staleness", 0, "bounded-staleness floor for follower reads in the repl experiment (0 = any staleness)")
		traceN  = flag.Int("trace-sample", 0, "trace every N-th Update/Batch end to end (0 = off); stage quantiles land in the -json counters as trace.*")
		jsonOut = flag.String("json", "", "append machine-readable JSON result lines to this file (\"-\" = stdout)")
		metrics = flag.Bool("metrics", false, "embed each run's structured counters (flattened obs snapshot) in the -json rows")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rhbench [flags] <fig1|fig2a|fig2b|fig2c|tab1|tab2|fig3a|fig3b|fig3c|ext-clock|ext-capacity|ext-hybrids|ycsb-a..f|ycsb-e-index|table-query|index-lookup|batch|session-cache|lock-service|recovery|cluster-ycsb-a..f|cluster-bank|cluster-session-cache|cluster-lock-service|net-ycsb-a..f|repl|all>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	sc := harness.DefaultScale()
	sc.RBNodes = *nodes
	sc.HashElems = *elems
	sc.ListElems = *list
	sc.ArrayWords = *array
	sc.Duration = *dur
	sc.Seed = *seed
	if *ops > 0 {
		sc.Duration = 0
		sc.OpsPerThread = *ops
	}
	var err error
	sc.Threads, err = parseThreads(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *dist != harness.DistUniform && *dist != harness.DistZipfian {
		fmt.Fprintf(os.Stderr, "rhbench: -dist must be %s or %s, got %q\n",
			harness.DistUniform, harness.DistZipfian, *dist)
		os.Exit(2)
	}
	if *theta <= 0 || *theta >= 1 {
		fmt.Fprintf(os.Stderr, "rhbench: -theta must be in (0,1), got %g\n", *theta)
		os.Exit(2)
	}
	if *records <= 0 || *vbytes <= 0 || *shards <= 0 {
		fmt.Fprintln(os.Stderr, "rhbench: -records, -vbytes and -shards must be positive")
		os.Exit(2)
	}
	if *scanMax <= 0 {
		fmt.Fprintln(os.Stderr, "rhbench: -scanmax must be positive")
		os.Exit(2)
	}
	if *tablesF <= 0 || *idxSel <= 0 {
		fmt.Fprintln(os.Stderr, "rhbench: -tables and -idxsel must be positive")
		os.Exit(2)
	}
	if *ttl <= 0 || *pump <= 0 {
		fmt.Fprintln(os.Stderr, "rhbench: -ttl and -pumpevery must be positive")
		os.Exit(2)
	}
	if *syncEv > 1 && !*useWAL {
		fmt.Fprintln(os.Stderr, "rhbench: -syncevery needs -wal")
		os.Exit(2)
	}
	if *traceN < 0 {
		fmt.Fprintln(os.Stderr, "rhbench: -trace-sample must be non-negative")
		os.Exit(2)
	}
	spec := harness.KVSpec{
		Records:     *records,
		ValueBytes:  *vbytes,
		Shards:      *shards,
		Dist:        *dist,
		Theta:       *theta,
		ScanMax:     *scanMax,
		Tables:      *tablesF,
		IdxSel:      *idxSel,
		TTL:         *ttl,
		PumpEvery:   *pump,
		WAL:         *useWAL,
		SyncEvery:   *syncEv,
		TraceSample: *traceN,
	}
	systemsList, err := parseInts(*systems, "system count", 1, 1<<20)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	crossList, err := parsePercents(*crossPc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	batchList, err := parseInts(*batches, "batch size", 1, 1<<16)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	connsList, err := parseInts(*connsF, "connection count", 1, 1<<12)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	replList, err := parseInts(*replsF, "replica count", 0, 64)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *staleF < 0 {
		fmt.Fprintln(os.Stderr, "rhbench: -staleness must be non-negative")
		os.Exit(2)
	}
	cspec := harness.KVSpec{
		Records:     *records,
		ValueBytes:  *vbytes,
		Backend:     harness.BackendCluster,
		Dist:        harness.DistUniform, // scaling claims need balanced load
		Theta:       *theta,
		CrossKeys:   *ckeys,
		ScanMax:     *scanMax,
		TTL:         *ttl,
		PumpEvery:   *pump,
		WAL:         *useWAL,
		SyncEvery:   *syncEv,
		TraceSample: *traceN,
	}
	// An explicit -dist overrides the cluster default (the flag's own
	// default stays zipfian for the ycsb-* experiments, as YCSB specifies).
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dist" {
			cspec.Dist = *dist
		}
	})
	if *useNet {
		spec.Net, spec.Conns, spec.Pipeline = true, connsList[0], *pipe
		cspec.Net, cspec.Conns, cspec.Pipeline = true, connsList[0], *pipe
	}
	recoveryOps := []int{2_000, 10_000, 40_000}
	if *quick {
		q := harness.SmallScale()
		q.Threads = []int{1, 2, 4}
		q.OpsPerThread = 300
		// Explicit -threads / -ops survive -quick, so a pinned point (the
		// connection-scaling trajectory rows) can use the quick sizes with
		// its own sweep.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "threads":
				q.Threads = sc.Threads
			case "ops":
				q.OpsPerThread = *ops
			}
		})
		sc = q
		spec.Records = 512
		spec.Shards = 4
		cspec.Records = 512
		// An explicit -records also survives -quick (the index-lookup gate
		// point runs at full table scale under the quick harness sizes).
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "records" {
				spec.Records, cspec.Records = *records, *records
			}
		})
		systemsList = []int{1, 4}
		crossList = []int{0, 20}
		batchList = []int{1, 16}
		// An explicit -conns survives -quick (the bench gate pins the
		// deterministic 1-connection closed-loop point).
		connsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "conns" {
				connsSet = true
			}
		})
		if !connsSet {
			connsList = []int{1, 4}
		}
		recoveryOps = []int{500, 2_000}
	}
	sweep := clusterSweep{systems: systemsList, cross: crossList, spec: cspec}
	nets := netSweep{conns: connsList, pipeline: *pipe}

	exp := flag.Arg(0)
	em := &emitter{out: os.Stdout, exp: exp, metrics: *metrics}
	if *jsonOut == "-" {
		em.json = os.Stdout
	} else if *jsonOut != "" {
		f, err := os.OpenFile(*jsonOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rhbench:", err)
			os.Exit(2)
		}
		defer f.Close()
		em.json = f
	}
	if strings.HasPrefix(exp, "cluster-") || exp == "all" {
		// Reject bad cluster specs here with a clean message; inside the
		// sweep they would surface as a MustRunCluster panic.
		probe := cspec
		probe.Mix = "a"
		switch {
		case exp == "cluster-bank":
			probe.Mix = "bank"
		case exp == "cluster-session-cache":
			probe.Mix = "session"
		case exp == "cluster-lock-service":
			probe.Mix = "lock"
		case strings.HasPrefix(exp, "cluster-ycsb-"):
			probe.Mix = strings.TrimPrefix(exp, "cluster-ycsb-")
		}
		if *ckeys <= 0 {
			fmt.Fprintf(os.Stderr, "rhbench: -crosskeys must be positive, got %d\n", *ckeys)
			os.Exit(2)
		}
		if err := probe.Check(); err != nil {
			fmt.Fprintln(os.Stderr, "rhbench:", err)
			os.Exit(2)
		}
	}
	if exp == "all" {
		for _, e := range []string{"fig1", "fig2a", "fig2b", "fig2c", "tab1", "tab2",
			"fig3a", "fig3b", "fig3c", "ext-clock", "ext-capacity", "ext-hybrids",
			"ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e", "ycsb-f",
			"ycsb-e-index", "table-query", "index-lookup", "batch",
			"session-cache", "lock-service", "recovery", "cluster-ycsb-a",
			"net-ycsb-a", "repl"} {
			em.exp = e
			runExperiment(e, em, sc, *capLim, spec, sweep, nets, batchList, recoveryOps, replList, *staleF)
			fmt.Println()
		}
		return
	}
	runExperiment(exp, em, sc, *capLim, spec, sweep, nets, batchList, recoveryOps, replList, *staleF)
}

// emitter routes one experiment's artifacts: human-readable series to out,
// and (when -json is set) one machine-readable line per measured point.
type emitter struct {
	out     *os.File
	json    io.Writer
	exp     string
	metrics bool
}

// series prints a throughput series and mirrors it to the JSON sink.
func (e *emitter) series(title string, results []harness.Result) {
	harness.PrintThroughputSeries(e.out, title, results)
	e.record(results)
}

// record mirrors results to the JSON sink without printing.
func (e *emitter) record(results []harness.Result) {
	if e.json == nil {
		return
	}
	if err := harness.WriteResultsJSONCounters(e.json, e.exp, results, e.metrics); err != nil {
		fmt.Fprintln(os.Stderr, "rhbench: json:", err)
		os.Exit(1)
	}
}

// clusterSweep carries the System-count × cross-fraction grid of the
// cluster experiments.
type clusterSweep struct {
	systems []int
	cross   []int
	spec    harness.KVSpec
}

// run prints one series block per (systems, cross) grid point for the mix.
// Cross fractions beyond the first are skipped at one System, where
// CrossPct is moot and the runs would be identical.
func (cs clusterSweep) run(em *emitter, sc harness.Scale, mix string) {
	for _, sys := range cs.systems {
		for i, x := range cs.cross {
			if sys == 1 && i > 0 {
				continue
			}
			spec := cs.spec
			spec.Mix = mix
			spec.Systems = sys
			spec.CrossPct = x
			em.series(
				fmt.Sprintf("Cluster %s: %d Systems, %d%% cross-System txns, %d records, %s distribution",
					spec.Name(), sys, x, spec.Records, spec.Dist),
				harness.SweepKV(sc, spec))
			fmt.Fprintln(em.out)
		}
	}
}

// netSweep carries the connection-pool grid of the net-ycsb-* experiments.
type netSweep struct {
	conns    []int
	pipeline bool
}

// run prints one series block per connection count for the mix, served
// over loopback TCP.
func (ns netSweep) run(em *emitter, sc harness.Scale, spec harness.KVSpec, mix string) {
	mode := "closed loop"
	if ns.pipeline {
		mode = "pipelined"
	}
	for _, c := range ns.conns {
		s := spec
		s.Mix = mix
		s.Net, s.Conns, s.Pipeline = true, c, ns.pipeline
		em.series(
			fmt.Sprintf("Net YCSB-%s over loopback TCP: %d connections (%s), %d records, %s distribution",
				strings.ToUpper(mix), c, mode, s.Records, s.Dist),
			harness.SweepKV(sc, s))
		fmt.Fprintln(em.out)
	}
}

// runExperiment dispatches one experiment id and prints its artifact.
func runExperiment(exp string, em *emitter, sc harness.Scale, capLim int, spec harness.KVSpec, sweep clusterSweep, nets netSweep, batchList, recoveryOps, replList []int, staleness int) {
	out := em.out
	switch exp {
	case "recovery":
		points := harness.RecoveryExperiment(recoveryOps, spec.ValueBytes)
		harness.PrintRecovery(out, points)
		em.record(harness.RecoveryResults(points))
		return
	case "fig1":
		em.series(
			fmt.Sprintf("Figure 1: %d-node Constant RB-Tree, 20%% mutations", sc.RBNodes),
			harness.Fig1(sc))
	case "fig2a":
		em.series(
			fmt.Sprintf("Figure 2 (top left): %d-node Constant RB-Tree, 20%% mutations", sc.RBNodes),
			harness.Fig2a(sc))
	case "fig2b":
		em.series(
			fmt.Sprintf("Figure 2 (top right): %d-node Constant RB-Tree, 80%% mutations", sc.RBNodes),
			harness.Fig2b(sc))
	case "fig2c":
		for _, wp := range []int{20, 80} {
			results := harness.Fig2c(sc, wp)
			harness.PrintSpeedupBars(out,
				fmt.Sprintf("Figure 2 (middle): single-thread speedup, %d%% writes", wp),
				harness.EngTL2, results)
			em.record(results)
		}
	case "tab1":
		results := harness.Tables(sc, 20)
		harness.PrintBreakdownTable(out,
			"Figure 2 table `20_100_R`: single-thread breakdown, 20% writes", results)
		em.record(results)
	case "tab2":
		results := harness.Tables(sc, 80)
		harness.PrintBreakdownTable(out,
			"Figure 2 table `80_100_R`: single-thread breakdown, 80% writes", results)
		em.record(results)
	case "fig3a":
		em.series(
			fmt.Sprintf("Figure 3 (left): %d-element Constant Hash Table, 20%% mutations", sc.HashElems),
			harness.Fig3a(sc))
	case "fig3b":
		em.series(
			fmt.Sprintf("Figure 3 (middle): %d-node Constant Sorted List, 5%% mutations", sc.ListElems),
			harness.Fig3b(sc))
	case "fig3c":
		harness.PrintFig3c(out, harness.Fig3c(sc))
	case "ext-clock":
		em.series(
			"Extension: GV6 vs GV5 global clock (RH1 Mixed 100, RB-Tree 20%)",
			harness.ExtClock(sc))
	case "ext-capacity":
		harness.PrintCapacity(out, harness.ExtCapacity(sc, capLim), capLim)
	case "ext-hybrids":
		em.series(
			"Extension: hybrid designs compared (RB-Tree 20%)",
			harness.ExtHybrids(sc))
	case "ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e", "ycsb-f":
		spec.Mix = strings.TrimPrefix(exp, "ycsb-")
		readPct := map[string]string{"a": "50% reads / 50% updates", "b": "95% reads",
			"c": "read-only", "d": "95% latest-skewed reads / 5% inserts",
			"e": "95% short ordered scans / 5% inserts",
			"f": "50% reads / 50% read-modify-writes"}[spec.Mix]
		em.series(
			fmt.Sprintf("YCSB-%s (%s), %d records, %s distribution, %d-shard store",
				strings.ToUpper(spec.Mix), readPct, spec.Records, spec.Dist, spec.Shards),
			harness.SweepKV(sc, spec))
	case "ycsb-e-index":
		spec.Mix = "eidx"
		em.series(
			fmt.Sprintf("YCSB-E from the secondary index (95%% planner-bounded bucket scans / 5%% inserts), %d records over %d table(s), idxsel %d, %s distribution",
				spec.Records, spec.Tables, spec.IdxSel, spec.Dist),
			harness.SweepKV(sc, spec))
	case "table-query":
		spec.Mix = "query"
		em.series(
			fmt.Sprintf("Table query mix (45%% point / 25%% range / 20%% covering order-limit / 10%% upserts), %d records over %d table(s), idxsel %d, %s distribution",
				spec.Records, spec.Tables, spec.IdxSel, spec.Dist),
			harness.SweepKV(sc, spec))
	case "index-lookup":
		queries := sc.OpsPerThread
		if queries <= 0 {
			queries = 300
		}
		for _, eng := range []string{harness.EngRH1Mix2, harness.EngTL2} {
			results, err := harness.IndexLookup(eng, spec.Records, queries)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rhbench:", err)
				os.Exit(1)
			}
			// One series per mode: both run at one thread on the same
			// engine, so a shared table would collapse them.
			for _, r := range results {
				em.series(
					fmt.Sprintf("%s: %d rows, %d bucket-equality queries, %s",
						r.Workload, spec.Records, queries, eng),
					[]harness.Result{r})
			}
			fmt.Fprintln(out)
		}
	case "session-cache":
		spec.Mix = "session"
		em.series(
			fmt.Sprintf("Session cache: %d sessions, lease TTL %d ticks, expiry pump every %d ops, %s gets",
				spec.Records, spec.TTL, spec.PumpEvery, spec.Dist),
			harness.SweepKV(sc, spec))
	case "lock-service":
		spec.Mix = "lock"
		em.series(
			fmt.Sprintf("Lock service: %d locks, lease TTL %d ticks, 20%% crash-expiry reclaims, mutual-exclusion audited",
				spec.Records, spec.TTL),
			harness.SweepKV(sc, spec))
	case "batch":
		spec.Mix = "a"
		for _, size := range batchList {
			bs := spec
			bs.BatchSize = size
			em.series(
				fmt.Sprintf("Batching: YCSB-A with batch size %d (%d records, %s distribution)",
					size, bs.Records, bs.Dist),
				harness.SweepKV(sc, bs))
			fmt.Fprintln(out)
		}
	case "repl":
		// The read-heavy mix is where follower reads pay: 95% of the ops
		// can leave the primary. Every point runs with the WAL attached —
		// the K=0 baseline pays the same logging cost the replicated points
		// do, so the delta is the offload, not the log.
		for _, k := range replList {
			s := spec
			s.Mix = "b"
			s.WAL, s.Net, s.Conns, s.Pipeline = true, false, 0, false
			s.Replicas, s.Staleness = k, 0
			if k > 0 {
				s.Staleness = staleness
			}
			title := fmt.Sprintf("Replication: YCSB-B, %d WAL-shipping replicas serving the reads (%d records, %s distribution)",
				k, s.Records, s.Dist)
			if k == 0 {
				title = fmt.Sprintf("Replication baseline: YCSB-B, primary only, WAL attached (%d records, %s distribution)",
					s.Records, s.Dist)
			} else if s.Staleness > 0 {
				title += fmt.Sprintf(", staleness bound %d revisions", s.Staleness)
			}
			em.series(title, harness.SweepKV(sc, s))
			fmt.Fprintln(out)
		}
	case "net-ycsb-a", "net-ycsb-b", "net-ycsb-c", "net-ycsb-d", "net-ycsb-e", "net-ycsb-f":
		nets.run(em, sc, spec, strings.TrimPrefix(exp, "net-ycsb-"))
	case "cluster-ycsb-a", "cluster-ycsb-b", "cluster-ycsb-c", "cluster-ycsb-d", "cluster-ycsb-e", "cluster-ycsb-f":
		sweep.run(em, sc, strings.TrimPrefix(exp, "cluster-ycsb-"))
	case "cluster-bank":
		sweep.run(em, sc, "bank")
	case "cluster-session-cache":
		sweep.run(em, sc, "session")
	case "cluster-lock-service":
		sweep.run(em, sc, "lock")
	default:
		fmt.Fprintf(os.Stderr, "rhbench: unknown experiment %q\n", exp)
		os.Exit(2)
	}
}

// parseInts parses a comma-separated sweep of integers in [min, max],
// naming the quantity in errors.
func parseInts(s, what string, min, max int) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < min || n > max {
			return nil, fmt.Errorf("rhbench: bad %s %q", what, p)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseThreads parses "1,2,4" into a sweep of positive counts.
func parseThreads(s string) ([]int, error) {
	return parseInts(s, "thread count", 1, 1<<20)
}

// parsePercents parses "0,10,50" into a sweep of values in [0,100].
func parsePercents(s string) ([]int, error) {
	return parseInts(s, "percentage", 0, 100)
}
