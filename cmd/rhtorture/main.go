// Command rhtorture stress-tests any engine with randomized invariant
// workloads — the long-running counterpart of the unit-test conformance
// suite. It runs three concurrent invariant games and fails loudly on the
// first violation:
//
//   - conservation: random transfers between accounts (total must not move);
//   - snapshot: writers keep a group of spread-out words equal, readers
//     verify they never observe a mixed generation;
//   - counter: every committed increment must land exactly once.
//
// A fraction of transactions simulate system calls (Tx.Unsupported), and the
// simulated HTM can be squeezed with -caplines to keep the engine constantly
// bouncing between its protocol levels while the invariants are checked.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"rhtm"
	"rhtm/internal/harness"
)

func main() {
	var (
		engineName = flag.String("engine", harness.EngRH1Mix2, "engine to torture (see rhbench)")
		threads    = flag.Int("threads", 8, "worker goroutines")
		dur        = flag.Duration("dur", 2*time.Second, "torture duration")
		capLines   = flag.Int("caplines", 0, "HTM footprint cap in lines (0 = default hardware)")
		sysPct     = flag.Int("syscalls", 5, "percentage of transactions simulating a syscall")
		seed       = flag.Int64("seed", time.Now().UnixNano(), "RNG seed")
	)
	flag.Parse()

	cfg := rhtm.DefaultConfig(1 << 18)
	if *capLines > 0 {
		cfg.HTM = harness.CapacityHTMConfig(*capLines)
	}
	s := rhtm.MustNewSystem(cfg)
	eng, err := harness.Build(s, *engineName, 0)
	if err != nil {
		log.Fatal(err)
	}

	const accounts = 64
	const groupWords = 8
	bank := s.MustAlloc(accounts)
	for i := 0; i < accounts; i++ {
		s.Poke(bank+rhtm.Addr(i), 1000)
	}
	group := make([]rhtm.Addr, groupWords)
	for i := range group {
		group[i] = s.MustAlloc(1)
		s.MustAlloc(31)
	}
	counter := s.MustAlloc(1)

	fmt.Printf("torturing %s: %d threads for %v (caplines=%d, syscalls=%d%%, seed=%d)\n",
		eng.Name(), *threads, *dur, *capLines, *sysPct, *seed)

	var stop atomic.Bool
	var incs atomic.Uint64
	var violations atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < *threads; w++ {
		th := eng.NewThread()
		rng := rand.New(rand.NewSource(*seed + int64(w)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				syscall := rng.Intn(100) < *sysPct
				switch rng.Intn(3) {
				case 0: // conservation
					from := bank + rhtm.Addr(rng.Intn(accounts))
					to := bank + rhtm.Addr(rng.Intn(accounts))
					amt := uint64(rng.Intn(5))
					err := th.Atomic(func(tx rhtm.Tx) error {
						if syscall {
							tx.Unsupported()
						}
						if f := tx.Load(from); f >= amt {
							tx.Store(from, f-amt)
							tx.Store(to, tx.Load(to)+amt)
						}
						return nil
					})
					fatalIf(err)
				case 1: // snapshot game
					write := rng.Intn(4) == 0
					gen := rng.Uint64()
					err := th.Atomic(func(tx rhtm.Tx) error {
						if syscall {
							tx.Unsupported()
						}
						if write {
							for _, a := range group {
								tx.Store(a, gen)
							}
							return nil
						}
						v0 := tx.Load(group[0])
						for _, a := range group[1:] {
							if tx.Load(a) != v0 {
								violations.Add(1)
							}
						}
						return nil
					})
					fatalIf(err)
				default: // counter
					err := th.Atomic(func(tx rhtm.Tx) error {
						if syscall {
							tx.Unsupported()
						}
						tx.Store(counter, tx.Load(counter)+1)
						return nil
					})
					fatalIf(err)
					incs.Add(1)
				}
			}
		}()
	}
	time.Sleep(*dur)
	stop.Store(true)
	wg.Wait()

	failed := false
	if v := violations.Load(); v > 0 {
		fmt.Printf("FAIL: %d torn snapshots observed\n", v)
		failed = true
	}
	var total uint64
	for i := 0; i < accounts; i++ {
		total += s.Load(bank + rhtm.Addr(i))
	}
	if total != accounts*1000 {
		fmt.Printf("FAIL: bank total = %d, want %d\n", total, accounts*1000)
		failed = true
	}
	if got := s.Load(counter); got != incs.Load() {
		fmt.Printf("FAIL: counter = %d, want %d\n", got, incs.Load())
		failed = true
	}
	st := eng.Snapshot()
	fmt.Printf("stats: %s\n", st)
	if failed {
		os.Exit(1)
	}
	fmt.Printf("OK: %d commits, all invariants hold\n", st.Commits())
}

// fatalIf aborts the torture run on an unexpected engine error.
func fatalIf(err error) {
	if err != nil {
		log.Fatalf("transaction failed: %v", err)
	}
}
