package wal

import (
	"errors"
	"fmt"
)

// TxnGroup is one committed transaction decoded from the log: its id, the
// cross-System flag, and its redo operations in commit order.
type TxnGroup struct {
	TxID  uint64
	Cross bool
	Ops   []Op
}

// ScanResult is the recovery view of one stream.
type ScanResult struct {
	// Checkpoint holds the entries of the last complete checkpoint group,
	// nil when the log has none.
	Checkpoint []Op
	// Txns lists the committed transaction groups after that checkpoint
	// (after the last global Mark on a coordinator stream), in log order —
	// the committed prefix to replay. A trailing group without its commit
	// frame, and everything after the first torn or corrupt frame, is
	// excluded.
	Txns []TxnGroup
	// Marks holds the per-transaction resolution markers seen after the
	// last global Mark (coordinator streams): decisions recovery may skip.
	Marks map[uint64]bool
	// ValidBytes is the length of the well-formed frame prefix; the device
	// must be truncated to it before new appends continue.
	ValidBytes int
	// NextLSN is one past the last valid frame's LSN (1 for an empty log).
	NextLSN uint64
	// MaxTxID is the largest cross-transaction id seen anywhere in the log
	// (including resolved history) — the floor for a recovered coordinator's
	// transaction-id counter.
	MaxTxID uint64
	// Epoch is the largest primary epoch recorded in the log (0 when no
	// KindEpoch frame exists), and Membership the blob of the latest such
	// frame — the repl layer's durable role map.
	Epoch      uint64
	Membership []byte
}

// Scan parses one stream's bytes into its recovery view. Scanning is
// forgiving exactly once, at the tail: the first torn or corrupt frame ends
// the log (everything durable before it is kept); a malformed frame
// *sequence* — an op outside a group, a commit without a begin — also ends
// the log there, since the writer never produces one and anything after it
// is untrustworthy.
func Scan(data []byte) ScanResult {
	sr := ScanResult{Marks: map[uint64]bool{}}
	var open *TxnGroup
	var ckpt []Op
	inCkpt := false
	pos := 0
	lastLSN := uint64(0)
	valid := 0
	for pos < len(data) {
		rec, n, err := Decode(data[pos:])
		if err != nil {
			break
		}
		bad := false
		switch rec.Kind {
		case KindBegin:
			if open != nil || inCkpt {
				bad = true
				break
			}
			open = &TxnGroup{TxID: rec.TxID, Cross: rec.Flags&FlagCross != 0}
			if open.Cross && rec.TxID > sr.MaxTxID {
				sr.MaxTxID = rec.TxID
			}
		case KindOp:
			if open == nil {
				bad = true
				break
			}
			open.Ops = append(open.Ops, rec.Op)
		case KindCommit:
			if open == nil || rec.TxID != open.TxID {
				bad = true
				break
			}
			sr.Txns = append(sr.Txns, *open)
			open = nil
		case KindCheckpointBegin:
			if open != nil || inCkpt {
				bad = true
				break
			}
			inCkpt = true
			ckpt = nil
		case KindCheckpointEntry:
			if !inCkpt {
				bad = true
				break
			}
			ckpt = append(ckpt, rec.Op)
		case KindCheckpointEnd:
			if !inCkpt || rec.TxID != uint64(len(ckpt)) {
				bad = true
				break
			}
			inCkpt = false
			if ckpt == nil {
				ckpt = []Op{}
			}
			sr.Checkpoint = ckpt
			sr.Txns = nil // replay restarts from the checkpoint
		case KindMark:
			if open != nil || inCkpt {
				bad = true
				break
			}
			if rec.TxID > sr.MaxTxID {
				sr.MaxTxID = rec.TxID
			}
			if rec.Flags&FlagGlobal != 0 {
				sr.Txns = nil
				sr.Marks = map[uint64]bool{}
			} else {
				sr.Marks[rec.TxID] = true
			}
		case KindEpoch:
			if open != nil || inCkpt {
				bad = true
				break
			}
			if rec.TxID >= sr.Epoch {
				sr.Epoch = rec.TxID
				sr.Membership = rec.Meta
			}
		default:
			bad = true
		}
		if bad {
			break
		}
		pos += n
		lastLSN = rec.LSN
		// The truncate point only advances at unit boundaries: a trailing
		// group the crash cut before its commit frame must be truncated
		// away entirely, or the next writer would append fresh groups after
		// a dangling begin and poison every later scan.
		if open == nil && !inCkpt {
			valid = pos
		}
	}
	sr.ValidBytes = valid
	sr.NextLSN = lastLSN + 1
	return sr
}

// OpenDevice scans dev, truncates its torn tail, and returns the recovery
// view — the one entry point the kv layer's Open paths use.
func OpenDevice(dev Device) (ScanResult, error) {
	data, err := dev.Contents()
	if err != nil {
		return ScanResult{}, fmt.Errorf("wal: read device: %w", err)
	}
	sr := Scan(data)
	if sr.ValidBytes < len(data) {
		if err := dev.Truncate(sr.ValidBytes); err != nil {
			return ScanResult{}, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	return sr, nil
}

// ErrNoWAL reports a durability operation on a DB opened without a log.
var ErrNoWAL = errors.New("wal: no log attached")
