package wal

import (
	"bytes"
	"errors"
	"testing"
)

// The frame codec is the boundary where committed transactions become
// durable bytes; FuzzWALRecord hammers the round trip with arbitrary
// payloads, the golden test pins the exact on-device encoding (a silent
// format change would orphan every existing log), and the corruption tests
// pin the exact failure mode of every damaged byte: ErrCorrupt, never a
// bogus decode.

func FuzzWALRecord(f *testing.F) {
	f.Add(uint64(1), uint64(7), uint8(0), []byte("key"), []byte("value"), uint64(3), uint64(0), uint32(0))
	f.Add(uint64(2), uint64(0), uint8(FlagCross), []byte(nil), []byte(nil), uint64(0), uint64(9), uint32(5))
	f.Add(uint64(1<<63), uint64(1<<40), uint8(3), bytes.Repeat([]byte{0xff}, 300), []byte{}, uint64(1<<62), uint64(1), uint32(1<<20))
	f.Add(uint64(0), uint64(0), uint8(0), []byte("\x00"), bytes.Repeat([]byte{0}, 77), uint64(1), uint64(2), uint32(3))
	f.Fuzz(func(t *testing.T, lsn, txid uint64, flags uint8, key, value []byte, rev, lease uint64, part uint32) {
		if len(key) > 1<<16 {
			key = key[:1<<16]
		}
		if len(value) > 1<<16 {
			value = value[:1<<16]
		}
		recs := []Record{
			{Kind: KindBegin, Flags: flags, LSN: lsn, TxID: txid},
			{Kind: KindOp, Flags: flags, LSN: lsn + 1, TxID: txid,
				Op: Op{Part: int(part), Kind: OpPut, Key: key, Value: value, Rev: rev, Lease: lease}},
			{Kind: KindOp, Flags: flags, LSN: lsn + 2, TxID: txid,
				Op: Op{Part: int(part), Kind: OpDelete, Key: key, Rev: rev}},
			{Kind: KindCommit, Flags: flags, LSN: lsn + 3, TxID: txid},
			{Kind: KindCheckpointBegin, LSN: lsn + 4},
			{Kind: KindCheckpointEntry, LSN: lsn + 5,
				Op: Op{Part: int(part), Kind: OpPut, Key: key, Value: value, Rev: rev, Lease: lease}},
			{Kind: KindCheckpointEnd, LSN: lsn + 6, TxID: 1},
			{Kind: KindMark, Flags: flags, LSN: lsn + 7, TxID: txid},
		}
		var buf []byte
		for _, r := range recs {
			buf = Encode(buf, r)
		}
		pos := 0
		for i, want := range recs {
			got, n, err := Decode(buf[pos:])
			if err != nil {
				t.Fatalf("record %d: decode: %v", i, err)
			}
			pos += n
			if got.Kind != want.Kind || got.LSN != want.LSN || got.Flags != want.Flags {
				t.Fatalf("record %d: header %+v, want %+v", i, got, want)
			}
			switch want.Kind {
			case KindBegin, KindCommit, KindMark, KindCheckpointEnd:
				if got.TxID != want.TxID {
					t.Fatalf("record %d: txid %d, want %d", i, got.TxID, want.TxID)
				}
			case KindOp, KindCheckpointEntry:
				if got.Op.Part != want.Op.Part || got.Op.Kind != want.Op.Kind ||
					got.Op.Rev != want.Op.Rev || got.Op.Lease != want.Op.Lease ||
					!bytes.Equal(got.Op.Key, want.Op.Key) || !bytes.Equal(got.Op.Value, want.Op.Value) {
					t.Fatalf("record %d: op %+v, want %+v", i, got.Op, want.Op)
				}
			}
		}
		if pos != len(buf) {
			t.Fatalf("decoded %d of %d bytes", pos, len(buf))
		}
		// Every strict prefix of the final frame is a clean tear, decodable
		// up to the previous boundary and ErrTorn at it.
		lastStart := pos - frameLen(buf[posOfLast(buf, len(recs)):])
		for _, cut := range []int{lastStart, lastStart + 1, pos - 1} {
			if cut < 0 || cut >= pos {
				continue
			}
			sr := Scan(buf[:cut])
			if sr.ValidBytes > cut {
				t.Fatalf("scan of %d-byte tear claims %d valid bytes", cut, sr.ValidBytes)
			}
		}
	})
}

// posOfLast returns the byte offset of the n-th (last) frame.
func posOfLast(buf []byte, n int) int {
	pos := 0
	for i := 0; i < n-1; i++ {
		_, c, err := Decode(buf[pos:])
		if err != nil {
			return pos
		}
		pos += c
	}
	return pos
}

func frameLen(b []byte) int {
	_, n, err := Decode(b)
	if err != nil {
		return len(b)
	}
	return n
}

// TestWALRecordGoldenVectors pins the exact frame bytes: u32 body length,
// u32 CRC-32C, u64 LSN, kind, flags, payload — all little-endian. A change
// here is a log-format break.
func TestWALRecordGoldenVectors(t *testing.T) {
	cases := []struct {
		name string
		rec  Record
		want []byte
	}{
		{
			name: "begin",
			rec:  Record{Kind: KindBegin, LSN: 1, TxID: 2},
			want: []byte{
				0x12, 0x00, 0x00, 0x00, // body length 18
				0xe4, 0x4e, 0x62, 0x9f, // crc32c
				0x01, 0, 0, 0, 0, 0, 0, 0, // lsn 1
				0x01,                      // kind begin
				0x00,                      // flags
				0x02, 0, 0, 0, 0, 0, 0, 0, // txid 2
			},
		},
		{
			name: "op-put",
			rec: Record{Kind: KindOp, Flags: FlagCross, LSN: 3, TxID: 2,
				Op: Op{Part: 1, Kind: OpPut, Key: []byte("k"), Value: []byte("vv"), Rev: 5, Lease: 6}},
			want: []byte{
				0x2a, 0x00, 0x00, 0x00, // body length 42
				0xc9, 0x2c, 0x60, 0x20, // crc32c
				0x03, 0, 0, 0, 0, 0, 0, 0, // lsn 3
				0x02,          // kind op
				0x01,          // flags cross
				0x01, 0, 0, 0, // part 1
				0x00,                      // put
				0x05, 0, 0, 0, 0, 0, 0, 0, // rev 5
				0x06, 0, 0, 0, 0, 0, 0, 0, // lease 6
				0x01, 0, 0, 0, // key length
				'k',
				0x02, 0, 0, 0, // value length
				'v', 'v',
			},
		},
		{
			name: "mark-global",
			rec:  Record{Kind: KindMark, Flags: FlagGlobal, LSN: 9, TxID: 0},
			want: []byte{
				0x12, 0x00, 0x00, 0x00,
				0xaf, 0x8b, 0xee, 0x2b, // crc32c
				0x09, 0, 0, 0, 0, 0, 0, 0,
				0x07, // kind mark
				0x02, // flags global
				0x00, 0, 0, 0, 0, 0, 0, 0,
			},
		},
	}
	for _, c := range cases {
		got := Encode(nil, c.rec)
		if !bytes.Equal(got, c.want) {
			t.Errorf("%s: encoded\n % x\nwant\n % x", c.name, got, c.want)
		}
		back, n, err := Decode(c.want)
		if err != nil || n != len(c.want) {
			t.Errorf("%s: decode: n=%d err=%v", c.name, n, err)
			continue
		}
		// Op frames carry no txid — the enclosing group supplies it.
		wantTxID := c.rec.TxID
		if c.rec.Kind == KindOp || c.rec.Kind == KindCheckpointEntry {
			wantTxID = 0
		}
		if back.Kind != c.rec.Kind || back.LSN != c.rec.LSN || back.TxID != wantTxID {
			t.Errorf("%s: round trip %+v", c.name, back)
		}
	}
}

// TestWALRecordCorruption: every single-byte corruption of a frame must be
// rejected with ErrCorrupt (or shorten into ErrTorn via the length word) —
// never decode into a different record.
func TestWALRecordCorruption(t *testing.T) {
	frame := Encode(nil, Record{Kind: KindOp, LSN: 7, TxID: 3,
		Op: Op{Part: 2, Kind: OpPut, Key: []byte("key!"), Value: []byte("value"), Rev: 11, Lease: 1}})
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		rec, n, err := Decode(mut)
		if err == nil {
			t.Fatalf("byte %d corrupted: decoded %+v (%d bytes) instead of failing", i, rec, n)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTorn) {
			t.Fatalf("byte %d corrupted: err = %v, want ErrCorrupt or ErrTorn", i, err)
		}
	}
	// A clean tear at every boundary short of the full frame is ErrTorn.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := Decode(frame[:cut]); !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d: err = %v", cut, err)
		}
	}
}
