package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame layout (all integers little-endian):
//
//	offset 0  u32  body length B
//	offset 4  u32  CRC-32C over the body
//	offset 8  B bytes of body:
//	          u64  LSN (monotone per stream)
//	          u8   kind
//	          u8   flags
//	          payload (kind-specific, below)
//
// Payloads:
//
//	Begin / Commit / Mark:  u64 txid
//	Op / CheckpointEntry:   u32 partition, u8 op kind, u64 revision,
//	                        u64 lease, u32 key length, key bytes,
//	                        u32 value length, value bytes
//	CheckpointBegin:        (empty)
//	CheckpointEnd:          u64 entry count
//	Epoch:                  u64 epoch, u32 blob length, membership blob
//
// The CRC is the torn-tail detector: recovery reads frames until one is
// incomplete or fails its checksum and treats everything after as lost.
// LSNs never reset across reopen; they are the coordinate recovery and the
// checkpoint/durable cross-checks speak in.

// Kind classifies a frame.
type Kind uint8

const (
	// KindBegin opens a transaction group (payload: txid).
	KindBegin Kind = 1 + iota
	// KindOp is one redo operation of the open group.
	KindOp
	// KindCommit closes the group — the frame that makes it count.
	KindCommit
	// KindCheckpointBegin opens an in-log snapshot of the full state.
	KindCheckpointBegin
	// KindCheckpointEntry is one snapshot entry (an Op payload).
	KindCheckpointEntry
	// KindCheckpointEnd closes the snapshot (payload: entry count); only a
	// complete Begin..End group counts as a checkpoint.
	KindCheckpointEnd
	// KindMark is a coordinator resolution marker: with FlagGlobal, every
	// decision before it is fully resolved; without, the single transaction
	// it names is.
	KindMark
	// KindEpoch is a membership record: the stream's primary epoch number
	// rides in the TxID field and an opaque membership blob (the repl
	// layer's role map, JSON) in Meta. Promotion appends one, synced, as
	// its first frame — the durable fencing evidence: a writer of an older
	// epoch was fenced before this frame could exist, so no frame after it
	// can have come from the deposed primary.
	KindEpoch
	kindMax
)

// Frame flags.
const (
	// FlagCross marks a transaction group produced by a cross-System
	// two-phase commit; its txid is the cluster transaction id, which is
	// what recovery's applied-detection keys on.
	FlagCross = 1 << 0
	// FlagGlobal on a KindMark frame resolves every earlier decision.
	FlagGlobal = 1 << 1
)

// OpKind selects what one redo operation does.
type OpKind uint8

const (
	// OpPut stores Key→Value (with Lease) at revision Rev.
	OpPut OpKind = iota
	// OpDelete removes Key, consuming revision Rev.
	OpDelete
)

// Op is one redo operation: the store partition it belongs to (shard index
// on a sharded store, System id in a coordinator decision), what it does,
// and the revision the commit stamped (0 in decision records, where the
// revision is assigned at apply time).
type Op struct {
	Part  int
	Kind  OpKind
	Key   []byte
	Value []byte
	Rev   uint64
	Lease uint64
}

// Record is one decoded frame.
type Record struct {
	Kind  Kind
	Flags uint8
	LSN   uint64
	// TxID is the group id for Begin/Commit/Mark, the entry count for
	// CheckpointEnd, the epoch number for Epoch, and unused otherwise.
	TxID uint64
	// Op carries the payload of KindOp and KindCheckpointEntry frames.
	Op Op
	// Meta carries the membership blob of KindEpoch frames.
	Meta []byte
}

// ErrTorn reports an incomplete trailing frame: the crash cut mid-record.
// Recovery treats it as the end of the log.
var ErrTorn = errors.New("wal: torn frame (log ends mid-record)")

// ErrCorrupt reports a frame that is complete but fails its checksum or
// carries impossible lengths — corruption rather than a clean tear.
var ErrCorrupt = errors.New("wal: corrupt frame")

// frame header and payload bounds.
const (
	frameHeader = 8  // length + crc
	bodyHeader  = 10 // lsn + kind + flags
	// maxPayloadBytes bounds key/value lengths so corrupt length words fail
	// fast instead of allocating gigabytes.
	maxPayloadBytes = 1 << 26
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Encode appends r as one frame to dst and returns the extended slice.
func Encode(dst []byte, r Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	dst = appendU64(dst, r.LSN)
	dst = append(dst, byte(r.Kind), r.Flags)
	switch r.Kind {
	case KindBegin, KindCommit, KindMark, KindCheckpointEnd:
		dst = appendU64(dst, r.TxID)
	case KindOp, KindCheckpointEntry:
		dst = appendU32(dst, uint32(r.Op.Part))
		dst = append(dst, byte(r.Op.Kind))
		dst = appendU64(dst, r.Op.Rev)
		dst = appendU64(dst, r.Op.Lease)
		dst = appendU32(dst, uint32(len(r.Op.Key)))
		dst = append(dst, r.Op.Key...)
		dst = appendU32(dst, uint32(len(r.Op.Value)))
		dst = append(dst, r.Op.Value...)
	case KindCheckpointBegin:
		// empty payload
	case KindEpoch:
		dst = appendU64(dst, r.TxID)
		dst = appendU32(dst, uint32(len(r.Meta)))
		dst = append(dst, r.Meta...)
	default:
		panic(fmt.Sprintf("wal: encode of unknown kind %d", r.Kind))
	}
	body := dst[start+frameHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, crcTable))
	return dst
}

// Decode reads one frame from the front of b, returning the record and the
// bytes consumed. ErrTorn means b ends mid-frame; ErrCorrupt means the
// frame is complete but invalid.
func Decode(b []byte) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, ErrTorn
	}
	blen := int(binary.LittleEndian.Uint32(b))
	if blen < bodyHeader || blen > maxPayloadBytes {
		return Record{}, 0, fmt.Errorf("%w: body length %d", ErrCorrupt, blen)
	}
	if len(b) < frameHeader+blen {
		return Record{}, 0, ErrTorn
	}
	body := b[frameHeader : frameHeader+blen]
	if crc := crc32.Checksum(body, crcTable); crc != binary.LittleEndian.Uint32(b[4:]) {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := Record{
		LSN:   binary.LittleEndian.Uint64(body),
		Kind:  Kind(body[8]),
		Flags: body[9],
	}
	p := body[bodyHeader:]
	switch r.Kind {
	case KindBegin, KindCommit, KindMark, KindCheckpointEnd:
		if len(p) != 8 {
			return Record{}, 0, fmt.Errorf("%w: kind %d payload %d bytes", ErrCorrupt, r.Kind, len(p))
		}
		r.TxID = binary.LittleEndian.Uint64(p)
	case KindOp, KindCheckpointEntry:
		if len(p) < 4+1+8+8+4 {
			return Record{}, 0, fmt.Errorf("%w: op payload %d bytes", ErrCorrupt, len(p))
		}
		r.Op.Part = int(binary.LittleEndian.Uint32(p))
		r.Op.Kind = OpKind(p[4])
		if r.Op.Kind != OpPut && r.Op.Kind != OpDelete {
			return Record{}, 0, fmt.Errorf("%w: op kind %d", ErrCorrupt, r.Op.Kind)
		}
		r.Op.Rev = binary.LittleEndian.Uint64(p[5:])
		r.Op.Lease = binary.LittleEndian.Uint64(p[13:])
		klen := int(binary.LittleEndian.Uint32(p[21:]))
		p = p[25:]
		if klen < 0 || klen > len(p) {
			return Record{}, 0, fmt.Errorf("%w: key length %d", ErrCorrupt, klen)
		}
		r.Op.Key = append([]byte(nil), p[:klen]...)
		p = p[klen:]
		if len(p) < 4 {
			return Record{}, 0, fmt.Errorf("%w: missing value length", ErrCorrupt)
		}
		vlen := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if vlen < 0 || vlen != len(p) {
			return Record{}, 0, fmt.Errorf("%w: value length %d of %d", ErrCorrupt, vlen, len(p))
		}
		if vlen > 0 {
			r.Op.Value = append([]byte(nil), p...)
		}
	case KindCheckpointBegin:
		if len(p) != 0 {
			return Record{}, 0, fmt.Errorf("%w: checkpoint-begin payload", ErrCorrupt)
		}
	case KindEpoch:
		if len(p) < 12 {
			return Record{}, 0, fmt.Errorf("%w: epoch payload %d bytes", ErrCorrupt, len(p))
		}
		r.TxID = binary.LittleEndian.Uint64(p)
		mlen := int(binary.LittleEndian.Uint32(p[8:]))
		if mlen != len(p)-12 {
			return Record{}, 0, fmt.Errorf("%w: epoch blob length %d of %d", ErrCorrupt, mlen, len(p)-12)
		}
		if mlen > 0 {
			r.Meta = append([]byte(nil), p[12:]...)
		}
	default:
		return Record{}, 0, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, r.Kind)
	}
	return r, frameHeader + blen, nil
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}
