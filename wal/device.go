// Package wal is the durability layer of the repository: a simulated
// durable device, a checksummed redo-record codec, a group-commit writer,
// and a recovery scanner. The kv layer hooks it in at the commit boundary
// of store/ — the only layer that knows a transaction committed — so the
// log order of any two records for one store partition equals their commit
// order (the WAL rides the same per-store revision word that already orders
// the EventLog), extending the paper's substitution argument to durability:
// hardware and software commit paths produce byte-identical logs.
//
// The moving parts:
//
//   - Device (MemDevice, FileDevice): an append-only byte device with an
//     explicit Sync barrier. MemStorage adds crash injection: every
//     appended byte carries a global sequence stamp, and CrashImage(cut)
//     yields the storage a crash at that instant would leave behind —
//     including a torn tail truncated mid-record.
//   - Record / Encode / Decode (record.go): begin/op/commit/checkpoint
//     frames with per-record CRC32 checksums and monotone LSNs.
//   - Writer (writer.go): group commit. Committers publish whole
//     transactions; whoever reaches the device first flushes every
//     sequenced transaction and a single Sync covers the batch, amortizing
//     the sync cost exactly as kv.Batch amortizes 2PC.
//   - Scan (scan.go): the recovery parse — committed-prefix transaction
//     groups after the last complete checkpoint, stopping at the first
//     torn or corrupt frame.
package wal

import (
	"fmt"
	"os"
	"sync"
)

// Device is an append-only durable byte device. Append buffers bytes at the
// end; Sync is the durability barrier: bytes appended before a returned
// Sync survive any later crash, bytes after it may be lost or torn at any
// byte boundary. Contents reads everything appended so far (recovery);
// Truncate discards a torn tail before new appends continue.
//
// Append, Truncate and Contents are serialized by the caller (the Writer
// holds its lock); Sync may run concurrently with Append — that overlap is
// group commit, so implementations must tolerate it. A Sync only promises
// durability for bytes appended before it was called.
type Device interface {
	Append(p []byte) error
	Sync() error
	Contents() ([]byte, error)
	Truncate(n int) error
	Size() int
}

// Storage names a set of devices — one WAL stream per cluster System plus
// the coordinator decision log, or the single stream of a local DB.
type Storage interface {
	// Device opens (creating if absent) the named device. Reopening a name
	// returns the same content a crashed process would find.
	Device(name string) (Device, error)
}

// --- in-memory device with crash injection ---

// MemStorage is an in-memory Storage whose appends carry global sequence
// stamps, so a crash point cuts consistently across all devices: a byte
// survives the crash iff it was appended before the cut. Syncs do not move
// bytes — they only mark how far the *writer* may assume durability — so a
// CrashImage taken below a synced watermark models media loss, and one at
// Appended() models a clean stop.
type MemStorage struct {
	mu   sync.Mutex
	seq  uint64
	devs map[string]*MemDevice
}

// NewMemStorage builds an empty in-memory storage.
func NewMemStorage() *MemStorage {
	return &MemStorage{devs: map[string]*MemDevice{}}
}

// Device implements Storage.
func (s *MemStorage) Device(name string) (Device, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.devs[name]
	if !ok {
		d = &MemDevice{stg: s}
		s.devs[name] = d
	}
	return d, nil
}

// Appended returns the global append sequence: total bytes ever appended
// across every device. It is the coordinate space of CrashImage cuts.
func (s *MemStorage) Appended() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// CrashImage clones the storage as a crash at global sequence cut would
// leave it: each device keeps exactly the bytes appended before cut. A cut
// mid-append yields a torn tail — the recovery scanner's checksum is what
// detects it.
func (s *MemStorage) CrashImage(cut uint64) *MemStorage {
	s.mu.Lock()
	defer s.mu.Unlock()
	img := NewMemStorage()
	for name, d := range s.devs {
		nd := &MemDevice{stg: img}
		d.mu.Lock()
		for _, seg := range d.segs {
			keep := len(seg.buf)
			if seg.seq >= cut {
				keep = 0
			} else if seg.seq+uint64(len(seg.buf)) > cut {
				keep = int(cut - seg.seq)
			}
			if keep > 0 {
				nd.segs = append(nd.segs, memSeg{seq: seg.seq, buf: append([]byte(nil), seg.buf[:keep]...)})
				nd.size += keep
			}
			if keep < len(seg.buf) {
				break
			}
		}
		d.mu.Unlock()
		nd.synced = nd.size
		img.devs[name] = nd
	}
	img.seq = s.seq
	return img
}

// memSeg is one append's bytes with its global sequence stamp.
type memSeg struct {
	seq uint64
	buf []byte
}

// MemDevice is one in-memory device. The zero value is usable standalone
// (no storage, no crash injection) — benchmarks and writer tests use it
// directly.
type MemDevice struct {
	mu     sync.Mutex // guards size/segs/synced against the concurrent Sync
	stg    *MemStorage
	segs   []memSeg
	size   int
	synced int
	syncs  int

	// SyncDelay, when nonzero, makes every Sync busy-wait that many host
	// nanoseconds via time.Sleep — the simulated cost of a durable barrier,
	// which is what gives group commit something to amortize in benchmarks.
	SyncDelay SyncDelayFunc
}

// SyncDelayFunc simulates the cost of one durable barrier.
type SyncDelayFunc func()

// Append implements Device.
func (d *MemDevice) Append(p []byte) error {
	var seq uint64
	if d.stg != nil {
		d.stg.mu.Lock()
		seq = d.stg.seq
		d.stg.seq += uint64(len(p))
		d.stg.mu.Unlock()
	}
	d.mu.Lock()
	d.segs = append(d.segs, memSeg{seq: seq, buf: append([]byte(nil), p...)})
	d.size += len(p)
	d.mu.Unlock()
	return nil
}

// Sync implements Device. The simulated barrier cost runs outside the
// device lock, so appends proceed underneath it — the overlap the Writer's
// group commit amortizes.
func (d *MemDevice) Sync() error {
	d.mu.Lock()
	target := d.size
	d.mu.Unlock()
	if d.SyncDelay != nil {
		d.SyncDelay()
	}
	d.mu.Lock()
	if target > d.synced {
		d.synced = target
	}
	d.syncs++
	d.mu.Unlock()
	return nil
}

// Contents implements Device.
func (d *MemDevice) Contents() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]byte, 0, d.size)
	for _, seg := range d.segs {
		out = append(out, seg.buf...)
	}
	return out, nil
}

// Truncate implements Device.
func (d *MemDevice) Truncate(n int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 || n > d.size {
		return fmt.Errorf("wal: truncate %d outside device of %d bytes", n, d.size)
	}
	keep := n
	var segs []memSeg
	for _, seg := range d.segs {
		if keep <= 0 {
			break
		}
		if len(seg.buf) <= keep {
			segs = append(segs, seg)
			keep -= len(seg.buf)
			continue
		}
		segs = append(segs, memSeg{seq: seg.seq, buf: seg.buf[:keep]})
		keep = 0
	}
	d.segs = segs
	d.size = n
	if d.synced > n {
		d.synced = n
	}
	return nil
}

// Size implements Device.
func (d *MemDevice) Size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// ContentsFrom reads the bytes appended at or after offset off — the
// tailer's incremental read path (the capability Tailer probes for, so it
// avoids re-reading the whole device on every wakeup).
func (d *MemDevice) ContentsFrom(off int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 || off > d.size {
		return nil, fmt.Errorf("wal: read at %d outside device of %d bytes", off, d.size)
	}
	out := make([]byte, 0, d.size-off)
	skip := off
	for _, seg := range d.segs {
		if skip >= len(seg.buf) {
			skip -= len(seg.buf)
			continue
		}
		out = append(out, seg.buf[skip:]...)
		skip = 0
	}
	return out, nil
}

// Syncs returns how many Sync barriers the device has served (tests).
func (d *MemDevice) Syncs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// --- file-backed device ---

// FileStorage is a Storage over a host directory: one file per device
// name. It is the real-persistence path of examples/durability; the test
// batteries use MemStorage for injectable crashes.
type FileStorage struct {
	dir string
}

// NewFileStorage builds a Storage rooted at dir, creating it if needed.
func NewFileStorage(dir string) (*FileStorage, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: storage dir: %w", err)
	}
	return &FileStorage{dir: dir}, nil
}

// Device implements Storage.
func (s *FileStorage) Device(name string) (Device, error) {
	f, err := os.OpenFile(s.dir+"/"+name+".wal", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open device: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileDevice{f: f, size: int(st.Size())}, nil
}

// FileDevice is an os.File-backed Device: Append writes at the end, Sync is
// fsync, Contents reads the file back for recovery.
type FileDevice struct {
	f    *os.File
	size int
}

// Append implements Device.
func (d *FileDevice) Append(p []byte) error {
	n, err := d.f.WriteAt(p, int64(d.size))
	d.size += n
	return err
}

// Sync implements Device.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// Contents implements Device.
func (d *FileDevice) Contents() ([]byte, error) {
	out := make([]byte, d.size)
	if _, err := d.f.ReadAt(out, 0); err != nil && d.size > 0 {
		return nil, err
	}
	return out, nil
}

// ContentsFrom reads the bytes at or after offset off (the tailer's
// incremental read capability).
func (d *FileDevice) ContentsFrom(off int) ([]byte, error) {
	if off < 0 || off > d.size {
		return nil, fmt.Errorf("wal: read at %d outside device of %d bytes", off, d.size)
	}
	out := make([]byte, d.size-off)
	if _, err := d.f.ReadAt(out, int64(off)); err != nil && len(out) > 0 {
		return nil, err
	}
	return out, nil
}

// Truncate implements Device.
func (d *FileDevice) Truncate(n int) error {
	if err := d.f.Truncate(int64(n)); err != nil {
		return err
	}
	d.size = n
	return nil
}

// Size implements Device.
func (d *FileDevice) Size() int { return d.size }

// Close releases the underlying file.
func (d *FileDevice) Close() error { return d.f.Close() }
