package wal

import (
	"errors"
	"sync"
	"time"

	"rhtm/obs"
)

// ErrFenced reports an operation on a writer whose epoch was fenced off:
// the stream has a new primary and this writer must never reach the device
// again. Unlike device errors the rejection is deliberate — a deposed
// primary's commits fail here, before any frame is appended, which is the
// whole zombie-rejection mechanism.
var ErrFenced = errors.New("wal: writer fenced (stream has a newer epoch)")

// Writer is the group-commit appender of one WAL stream. Committers call
// Commit with a whole committed transaction; the writer sequences it behind
// its per-partition revision predecessors, encodes the group
// (begin/ops/commit) contiguously, and appends it to the device. Durability
// is leader-based group commit: the first committer needing a sync becomes
// the syncer while the device barrier runs unlocked, so every transaction
// appended meanwhile is covered by the next single sync — the classic
// amortization, measured by Stats (transactions per sync grows with
// concurrency).
//
// Sequencing: per-store revisions are dense in commit order (every
// committed write advances the owning store's revision word, aborted
// attempts roll it back), so the writer holds a transaction back until each
// of its partitions is at exactly the transaction's first revision there.
// Two transactions sharing a partition commit in revision order on that
// partition — the engine (any engine) serialized them on the revision word
// — so log order equals commit order per partition and the durable log is
// always a consistent cut. Operations with revision 0 (coordinator decision
// records, which are applied rather than replayed) bypass the gate.
//
// The consequence the caller must honor: every committed transaction that
// consumed a revision MUST be published, or the gate stalls behind the
// hole. After a store is opened through the WAL, all writes must go through
// the logging paths (the kv layer's DB surface) — setup-path writes behind
// the log's back wedge the stream.
type Writer struct {
	mu   sync.Mutex
	cond *sync.Cond
	dev  Device

	syncEvery int
	next      map[int]uint64 // per-partition next expected revision
	parked    []*pendingTxn
	buf       []byte

	lsn       uint64 // last assigned LSN
	appended  int    // device bytes appended
	durable   int    // device bytes covered by a sync
	syncing   bool
	sinceSync uint64 // txns appended since the last sync
	failed    error

	stats statsWords

	// onAppend, when set, runs at the end of every successful device append,
	// under w.mu — the replication layer's wakeup hook. It must not call back
	// into the writer; tailer kicks (which take only the tailer's own lock)
	// are the intended use.
	onAppend func()

	// Optional observability (SetMetrics). batchHist records transactions
	// covered per sync barrier — the group-commit amortization
	// distribution; intervalHist records nanoseconds between consecutive
	// barriers. nil instruments are no-ops, so the sync paths observe
	// unconditionally.
	batchHist    *obs.Histogram
	intervalHist *obs.Histogram
	lastSync     time.Time
}

// Options configures a Writer.
type Options struct {
	// SyncEvery relaxes the durability promise: n > 1 syncs only every n
	// transactions, and Commit returns once its frames are appended (they
	// may be lost by a crash until the next sync). n <= 1 is full group
	// commit: Commit returns only after a sync covers the transaction.
	SyncEvery int
}

type pendingTxn struct {
	id    uint64
	flags uint8
	ops   []Op

	appended bool
	end      int // device bytes at the end of this txn's frames
	err      error
}

type statsWords struct {
	frames     uint64
	bytes      uint64
	txns       uint64
	syncs      uint64
	durableLSN uint64
	checkptLSN uint64
	checkptOps uint64
	marks      uint64
	fenced     uint64
}

// Stats is a snapshot of a writer's counters.
type Stats struct {
	// Frames / Bytes / Txns count appended frames, encoded bytes, and
	// logged transaction groups.
	Frames, Bytes, Txns uint64
	// Syncs counts device barriers; Txns/Syncs is the group-commit
	// amortization factor.
	Syncs uint64
	// DurableLSN is the last LSN covered by a sync; CheckpointLSN the LSN
	// of the last checkpoint's closing frame. CheckpointLSN <= DurableLSN
	// always (checkpoints sync before returning) — store.Validate
	// cross-checks it.
	DurableLSN, CheckpointLSN uint64
	// CheckpointOps counts entries written by the last checkpoint.
	CheckpointOps uint64
	// LastLSN is the last LSN assigned to an appended frame (whether or not
	// a sync covers it yet) — the replication lag reference point.
	LastLSN uint64
	// Fenced counts operations rejected with ErrFenced after Fence — the
	// zombie-primary commits that never reached the device.
	Fenced uint64
}

// NewWriter builds a writer over dev, which must already be truncated to a
// clean frame boundary (Scan + Device.Truncate — see Open in the kv layer).
// nextLSN is one past the last valid LSN of the existing log; startRevs
// seeds the per-partition sequence gate with each partition's next expected
// revision (current revision clock + 1).
func NewWriter(dev Device, nextLSN uint64, startRevs map[int]uint64, opts Options) *Writer {
	w := &Writer{
		dev:       dev,
		syncEvery: opts.SyncEvery,
		next:      map[int]uint64{},
		lsn:       nextLSN - 1,
		appended:  dev.Size(),
		durable:   dev.Size(),
	}
	for p, r := range startRevs {
		w.next[p] = r
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// SetMetrics attaches group-commit histograms: batch receives the number
// of transactions each sync barrier covered, interval the nanoseconds
// between consecutive barriers. Either may be nil. Call before the writer
// is shared.
func (w *Writer) SetMetrics(batch, interval *obs.Histogram) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.batchHist = batch
	w.intervalHist = interval
}

// SetOnAppend attaches a hook invoked (under the writer lock) after every
// successful device append — the replication layer registers its tailer
// wakeup here. The hook must be non-blocking and must not call back into
// the writer. Call before the writer is shared.
func (w *Writer) SetOnAppend(fn func()) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.onAppend = fn
}

// Fence permanently rejects every future operation with ErrFenced. A fenced
// writer never appends another byte: promotion fences the old primary's
// writer first, so any frame present after the new epoch's marker provably
// came from the new primary. Committers blocked inside the writer are woken
// and fail. Fencing an already-failed writer keeps the original error.
func (w *Writer) Fence() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed == nil {
		w.failed = ErrFenced
	}
	w.cond.Broadcast()
}

// failedLocked returns the writer's permanent failure, counting fenced
// rejections as it hands them out.
func (w *Writer) failedLocked() error {
	if w.failed == ErrFenced {
		w.stats.fenced++
	}
	return w.failed
}

// AppendEpoch appends a synced membership frame: the new primary epoch and
// its opaque membership blob. Promotion writes one as the first frame of the
// new reign — durable evidence the previous epoch was fenced before any
// later frame existed.
func (w *Writer) AppendEpoch(epoch uint64, membership []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failedLocked()
	}
	w.buf = w.buf[:0]
	w.lsn++
	w.buf = Encode(w.buf, Record{Kind: KindEpoch, LSN: w.lsn, TxID: epoch, Meta: membership})
	if err := w.appendLocked(w.buf, 1); err != nil {
		return err
	}
	if err := w.dev.Sync(); err != nil {
		w.failed = err
		w.cond.Broadcast()
		return err
	}
	w.stats.syncs++
	w.durable = w.appended
	w.stats.durableLSN = w.lsn
	return nil
}

// observeSyncLocked records one completed barrier covering batch txns.
func (w *Writer) observeSyncLocked(batch uint64) {
	w.batchHist.Observe(batch)
	if w.intervalHist != nil {
		now := time.Now()
		if !w.lastSync.IsZero() {
			w.intervalHist.Observe(uint64(now.Sub(w.lastSync)))
		}
		w.lastSync = now
	}
}

// Commit publishes one committed transaction (id groups its frames; flags
// is 0 or FlagCross) and blocks until it is appended — and, under full
// group commit, synced. Empty transactions are ignored.
func (w *Writer) Commit(id uint64, flags uint8, ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	t := &pendingTxn{id: id, flags: flags, ops: ops}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failedLocked()
	}
	w.parked = append(w.parked, t)
	w.flushReadyLocked()
	for !t.appended && t.err == nil && w.failed == nil {
		w.cond.Wait()
	}
	if t.err != nil {
		return t.err
	}
	if w.failed != nil {
		return w.failedLocked()
	}
	if w.syncEvery > 1 {
		if w.sinceSync >= uint64(w.syncEvery) && !w.syncing {
			return w.syncLocked()
		}
		return nil
	}
	// Full durability: wait for (or perform) a sync covering this txn.
	for t.end > w.durable {
		if w.failed != nil {
			return w.failedLocked()
		}
		if w.syncing {
			w.cond.Wait()
			continue
		}
		if err := w.syncLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Mark appends a resolution marker (coordinator streams): txid's decision
// is fully applied, or — with FlagGlobal — every earlier one is. Marks are
// advisory for the next recovery, so they are appended without a sync.
func (w *Writer) Mark(txid uint64, flags uint8) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failedLocked()
	}
	w.buf = w.buf[:0]
	w.lsn++
	w.buf = Encode(w.buf, Record{Kind: KindMark, Flags: flags, LSN: w.lsn, TxID: txid})
	w.stats.marks++
	return w.appendLocked(w.buf, 1)
}

// Checkpoint writes an in-log snapshot: it freezes appends, collects the
// snapshot through fn (which must return the complete durable state as
// replay operations — the caller runs its own transaction for consistency),
// writes the begin/entries/end group, and syncs. Recovery replays from the
// last complete checkpoint instead of the log head, so replay time scales
// with the post-checkpoint suffix.
//
// The freeze is the correctness argument: any transaction already flushed
// when Checkpoint acquires the writer committed before fn's snapshot and is
// therefore inside it; everything else flushes after the checkpoint group
// and is replayed on top (idempotently, by revision).
func (w *Writer) Checkpoint(fn func() ([]Op, error)) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failedLocked()
	}
	ops, err := fn()
	if err != nil {
		return err
	}
	w.buf = w.buf[:0]
	w.lsn++
	w.buf = Encode(w.buf, Record{Kind: KindCheckpointBegin, LSN: w.lsn})
	for _, op := range ops {
		w.lsn++
		w.buf = Encode(w.buf, Record{Kind: KindCheckpointEntry, LSN: w.lsn, Op: op})
	}
	w.lsn++
	end := w.lsn
	w.buf = Encode(w.buf, Record{Kind: KindCheckpointEnd, LSN: w.lsn, TxID: uint64(len(ops))})
	if err := w.appendLocked(w.buf, uint64(len(ops)+2)); err != nil {
		return err
	}
	if err := w.dev.Sync(); err != nil {
		w.failed = err
		w.cond.Broadcast()
		return err
	}
	w.stats.syncs++
	w.durable = w.appended
	w.stats.durableLSN = w.lsn
	w.observeSyncLocked(w.sinceSync)
	w.sinceSync = 0
	w.stats.checkptLSN = end
	w.stats.checkptOps = uint64(len(ops))
	return nil
}

// Sync forces the durability barrier over everything appended so far —
// the relaxed mode's explicit flush point.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failedLocked()
	}
	if w.durable == w.appended {
		return nil
	}
	return w.syncLocked()
}

// Stats snapshots the writer's counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Frames:        w.stats.frames,
		Bytes:         w.stats.bytes,
		Txns:          w.stats.txns,
		Syncs:         w.stats.syncs,
		DurableLSN:    w.stats.durableLSN,
		CheckpointLSN: w.stats.checkptLSN,
		CheckpointOps: w.stats.checkptOps,
		LastLSN:       w.lsn,
		Fenced:        w.stats.fenced,
	}
}

// flushReadyLocked encodes and appends every parked transaction whose
// revision predecessors are all on the device, repeating until none is
// ready (flushing one can unblock another).
func (w *Writer) flushReadyLocked() {
	for {
		progress := false
		for i := 0; i < len(w.parked); i++ {
			t := w.parked[i]
			if !w.readyLocked(t) {
				continue
			}
			w.parked = append(w.parked[:i], w.parked[i+1:]...)
			i--
			w.encodeAppendLocked(t)
			progress = true
		}
		if !progress {
			return
		}
	}
}

// readyLocked reports whether every op of t is next in its partition's
// revision sequence. Within one transaction a partition's revisions are
// consecutive (the engine serialized the transaction as a unit), so only
// the first op per partition needs checking — found by a linear scan of
// the earlier ops, which stays allocation-free on this per-commit path
// (transactions carry a handful of ops).
func (w *Writer) readyLocked(t *pendingTxn) bool {
	for i := range t.ops {
		op := &t.ops[i]
		if op.Rev == 0 || earlierOpOnPart(t.ops[:i], op.Part) {
			continue
		}
		next, tracked := w.next[op.Part]
		if !tracked {
			continue // first writer to an untracked partition sets the base
		}
		if op.Rev != next {
			return false
		}
	}
	return true
}

// earlierOpOnPart reports whether ops holds a gate-tracked (Rev != 0)
// operation on part.
func earlierOpOnPart(ops []Op, part int) bool {
	for i := range ops {
		if ops[i].Part == part && ops[i].Rev != 0 {
			return true
		}
	}
	return false
}

// encodeAppendLocked writes t's frame group and advances the gate.
func (w *Writer) encodeAppendLocked(t *pendingTxn) {
	w.buf = w.buf[:0]
	w.lsn++
	w.buf = Encode(w.buf, Record{Kind: KindBegin, Flags: t.flags, LSN: w.lsn, TxID: t.id})
	for i := range t.ops {
		w.lsn++
		w.buf = Encode(w.buf, Record{Kind: KindOp, Flags: t.flags, LSN: w.lsn, TxID: t.id, Op: t.ops[i]})
	}
	w.lsn++
	w.buf = Encode(w.buf, Record{Kind: KindCommit, Flags: t.flags, LSN: w.lsn, TxID: t.id})
	err := w.appendLocked(w.buf, uint64(len(t.ops)+2))
	for i := range t.ops {
		op := &t.ops[i]
		if op.Rev != 0 {
			if cur, tracked := w.next[op.Part]; !tracked || op.Rev >= cur {
				w.next[op.Part] = op.Rev + 1
			}
		}
	}
	t.appended = true
	t.end = w.appended
	t.err = err
	w.stats.txns++
	w.sinceSync++
	w.cond.Broadcast()
}

// appendLocked writes buf to the device, updating counters and failing the
// writer permanently on device errors.
func (w *Writer) appendLocked(buf []byte, frames uint64) error {
	if err := w.dev.Append(buf); err != nil {
		w.failed = err
		w.cond.Broadcast()
		return err
	}
	w.appended += len(buf)
	w.stats.frames += frames
	w.stats.bytes += uint64(len(buf))
	if w.onAppend != nil {
		w.onAppend()
	}
	return nil
}

// syncLocked runs one device barrier, releasing the lock while it runs so
// concurrent committers keep appending — that is where the grouping comes
// from. Exactly one syncer runs at a time.
func (w *Writer) syncLocked() error {
	w.syncing = true
	target := w.appended
	targetLSN := w.lsn
	w.mu.Unlock()
	err := w.dev.Sync()
	w.mu.Lock()
	w.syncing = false
	if err != nil {
		w.failed = err
		w.cond.Broadcast()
		return err
	}
	w.stats.syncs++
	if target > w.durable {
		w.durable = target
		w.stats.durableLSN = targetLSN
	}
	w.observeSyncLocked(w.sinceSync)
	w.sinceSync = 0
	w.cond.Broadcast()
	return nil
}
