package wal

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestEpochFrameRoundTrip: KindEpoch survives Encode/Decode and Scan keeps
// the newest epoch/membership.
func TestEpochFrameRoundTrip(t *testing.T) {
	blob := []byte(`{"epoch":3,"primary":"sys-01"}`)
	buf := Encode(nil, Record{Kind: KindEpoch, LSN: 1, TxID: 3, Meta: blob})
	rec, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) || rec.Kind != KindEpoch || rec.TxID != 3 || !bytes.Equal(rec.Meta, blob) {
		t.Fatalf("roundtrip mismatch: %+v consumed %d of %d", rec, n, len(buf))
	}

	// Empty membership blobs are legal.
	buf2 := Encode(nil, Record{Kind: KindEpoch, LSN: 2, TxID: 4})
	if rec, _, err = Decode(buf2); err != nil || rec.TxID != 4 || rec.Meta != nil {
		t.Fatalf("empty blob roundtrip: %+v, %v", rec, err)
	}

	sr := Scan(append(buf, buf2...))
	if sr.Epoch != 4 || sr.Membership != nil {
		t.Fatalf("scan epoch %d membership %q, want 4/nil", sr.Epoch, sr.Membership)
	}
	if sr.ValidBytes != len(buf)+len(buf2) || sr.NextLSN != 3 {
		t.Fatalf("scan cursor %d/%d", sr.ValidBytes, sr.NextLSN)
	}
}

// TestWriterAppendEpoch: the epoch frame is appended synced and a scan of
// the device sees it alongside ordinary traffic.
func TestWriterAppendEpoch(t *testing.T) {
	dev := &MemDevice{}
	w := NewWriter(dev, 1, map[int]uint64{0: 1}, Options{})
	if err := w.Commit(1, 0, []Op{{Part: 0, Kind: OpPut, Key: []byte("a"), Value: []byte("1"), Rev: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEpoch(7, []byte("members")); err != nil {
		t.Fatal(err)
	}
	if dev.Size() != dev.synced {
		t.Fatalf("epoch frame not covered by a sync: %d of %d", dev.synced, dev.Size())
	}
	sr := scanDev(t, dev)
	if sr.Epoch != 7 || string(sr.Membership) != "members" || len(sr.Txns) != 1 {
		t.Fatalf("scan: epoch %d membership %q txns %d", sr.Epoch, sr.Membership, len(sr.Txns))
	}
	st := w.Stats()
	if st.LastLSN == 0 || st.DurableLSN != st.LastLSN {
		t.Fatalf("stats: last %d durable %d", st.LastLSN, st.DurableLSN)
	}
}

// TestWriterFence: a fenced writer rejects everything with ErrFenced, never
// touches the device again, and counts the rejections.
func TestWriterFence(t *testing.T) {
	dev := &MemDevice{}
	w := NewWriter(dev, 1, map[int]uint64{0: 1}, Options{})
	if err := w.Commit(1, 0, []Op{{Part: 0, Kind: OpPut, Key: []byte("a"), Value: []byte("1"), Rev: 1}}); err != nil {
		t.Fatal(err)
	}
	before := dev.Size()
	w.Fence()
	if err := w.Commit(2, 0, []Op{{Part: 0, Kind: OpPut, Key: []byte("b"), Value: []byte("2"), Rev: 2}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("commit after fence: %v", err)
	}
	if err := w.Mark(9, 0); !errors.Is(err, ErrFenced) {
		t.Fatalf("mark after fence: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrFenced) {
		t.Fatalf("sync after fence: %v", err)
	}
	if err := w.AppendEpoch(2, nil); !errors.Is(err, ErrFenced) {
		t.Fatalf("epoch after fence: %v", err)
	}
	if dev.Size() != before {
		t.Fatalf("fenced writer appended %d bytes", dev.Size()-before)
	}
	if got := w.Stats().Fenced; got != 4 {
		t.Fatalf("fenced rejections %d, want 4", got)
	}
	// The pre-fence commit is still intact — fencing cuts the future, not
	// the past.
	if sr := scanDev(t, dev); len(sr.Txns) != 1 {
		t.Fatalf("scan after fence: %d txns", len(sr.Txns))
	}
}

// TestWriterFenceWakesParked: a transaction parked behind a revision hole
// is woken and failed by Fence instead of hanging forever.
func TestWriterFenceWakesParked(t *testing.T) {
	dev := &MemDevice{}
	w := NewWriter(dev, 1, map[int]uint64{0: 1}, Options{})
	done := make(chan error, 1)
	go func() {
		// Rev 2 with rev 1 never published: gate-parked.
		done <- w.Commit(2, 0, []Op{{Part: 0, Kind: OpPut, Key: []byte("b"), Value: []byte("2"), Rev: 2}})
	}()
	select {
	case err := <-done:
		t.Fatalf("parked commit returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	w.Fence()
	select {
	case err := <-done:
		if !errors.Is(err, ErrFenced) {
			t.Fatalf("parked commit: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("parked commit not woken by fence")
	}
}

// TestTailerStreamsUnits: a tailer decodes commits, marks, checkpoints, and
// epoch frames as whole units in log order, with a consistent cursor.
func TestTailerStreamsUnits(t *testing.T) {
	dev := &MemDevice{}
	w := NewWriter(dev, 1, map[int]uint64{0: 1}, Options{})
	tl := NewTailer(dev, 0, 1)
	w.SetOnAppend(tl.Kick)

	if err := w.Commit(1, 0, []Op{
		{Part: 0, Kind: OpPut, Key: []byte("a"), Value: []byte("1"), Rev: 1},
		{Part: 0, Kind: OpDelete, Key: []byte("a"), Rev: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Mark(1, FlagGlobal); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(func() ([]Op, error) {
		return []Op{{Part: 0, Kind: OpPut, Key: []byte("k"), Value: []byte("v"), Rev: 2}}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEpoch(1, []byte("m")); err != nil {
		t.Fatal(err)
	}

	u, err := tl.Next()
	if err != nil || u.Kind != UnitTxn || u.TxID != 1 || len(u.Txn.Ops) != 2 || u.EndLSN != 4 {
		t.Fatalf("unit 1: %+v, %v", u, err)
	}
	u, err = tl.Next()
	if err != nil || u.Kind != UnitMark || u.TxID != 1 || u.Flags&FlagGlobal == 0 {
		t.Fatalf("unit 2: %+v, %v", u, err)
	}
	u, err = tl.Next()
	if err != nil || u.Kind != UnitCheckpoint || len(u.Checkpoint) != 1 {
		t.Fatalf("unit 3: %+v, %v", u, err)
	}
	u, err = tl.Next()
	if err != nil || u.Kind != UnitEpoch || u.TxID != 1 || string(u.Meta) != "m" {
		t.Fatalf("unit 4: %+v, %v", u, err)
	}
	if tl.Offset() != dev.Size() || tl.NextLSN() != u.EndLSN+1 {
		t.Fatalf("cursor %d/%d after draining device of %d bytes", tl.Offset(), tl.NextLSN(), dev.Size())
	}
	if _, ok, err := tl.TryNext(); ok || err != nil {
		t.Fatalf("TryNext at EOF: ok=%v err=%v", ok, err)
	}
}

// TestTailerBlocksUntilAppend: Next blocks at the readable end and the
// writer's append hook wakes it.
func TestTailerBlocksUntilAppend(t *testing.T) {
	dev := &MemDevice{}
	w := NewWriter(dev, 1, map[int]uint64{0: 1}, Options{})
	tl := NewTailer(dev, 0, 1)
	w.SetOnAppend(tl.Kick)

	got := make(chan Unit, 1)
	go func() {
		u, err := tl.Next()
		if err != nil {
			t.Errorf("next: %v", err)
		}
		got <- u
	}()
	select {
	case u := <-got:
		t.Fatalf("Next returned on an empty log: %+v", u)
	case <-time.After(20 * time.Millisecond):
	}
	if err := w.Commit(1, 0, []Op{{Part: 0, Kind: OpPut, Key: []byte("a"), Value: []byte("1"), Rev: 1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-got:
		if u.Kind != UnitTxn || u.TxID != 1 {
			t.Fatalf("unit: %+v", u)
		}
	case <-time.After(time.Second):
		t.Fatal("tailer not woken by append")
	}

	// Close wakes a blocked reader with ErrTailerClosed.
	errs := make(chan error, 1)
	go func() {
		_, err := tl.Next()
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	tl.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrTailerClosed) {
			t.Fatalf("after close: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Next not woken by Close")
	}
}

// TestTailerResumesFromCursor: a fresh tailer at a unit's EndOff/EndLSN
// cursor sees exactly the suffix.
func TestTailerResumesFromCursor(t *testing.T) {
	dev := &MemDevice{}
	w := NewWriter(dev, 1, map[int]uint64{0: 1}, Options{})
	for i := uint64(1); i <= 3; i++ {
		if err := w.Commit(i, 0, []Op{{Part: 0, Kind: OpPut, Key: []byte{byte(i)}, Value: []byte{byte(i)}, Rev: i}}); err != nil {
			t.Fatal(err)
		}
	}
	tl := NewTailer(dev, 0, 1)
	u, err := tl.Next()
	if err != nil || u.TxID != 1 {
		t.Fatalf("first unit: %+v, %v", u, err)
	}
	resumed := NewTailer(dev, u.EndOff, u.EndLSN+1)
	for want := uint64(2); want <= 3; want++ {
		u, err = resumed.Next()
		if err != nil || u.TxID != want {
			t.Fatalf("resumed unit: %+v, %v (want txid %d)", u, err, want)
		}
	}
}

// TestTailerRejectsBadStream: a corrupt frame below the readable end is a
// permanent ErrBadStream, not a silent tail.
func TestTailerRejectsBadStream(t *testing.T) {
	dev := &MemDevice{}
	w := NewWriter(dev, 1, map[int]uint64{0: 1}, Options{})
	if err := w.Commit(1, 0, []Op{{Part: 0, Kind: OpPut, Key: []byte("a"), Value: []byte("1"), Rev: 1}}); err != nil {
		t.Fatal(err)
	}
	// Append garbage that parses as a complete frame with a bad checksum.
	if err := dev.Append([]byte{4, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(dev, 0, 1)
	if u, err := tl.Next(); err != nil || u.Kind != UnitTxn {
		t.Fatalf("good prefix: %+v, %v", u, err)
	}
	if _, err := tl.Next(); !errors.Is(err, ErrBadStream) {
		t.Fatalf("corrupt frame: %v", err)
	}
	// The failure is permanent.
	if _, _, err := tl.TryNext(); !errors.Is(err, ErrBadStream) {
		t.Fatalf("after failure: %v", err)
	}
}

// TestDeviceContentsFrom: the incremental read capability matches a suffix
// of Contents on both paths (multi-segment mem device).
func TestDeviceContentsFrom(t *testing.T) {
	dev := &MemDevice{}
	for _, p := range [][]byte{[]byte("abc"), []byte("defg"), []byte("h")} {
		if err := dev.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	full, _ := dev.Contents()
	for off := 0; off <= len(full); off++ {
		got, err := dev.ContentsFrom(off)
		if err != nil {
			t.Fatalf("ContentsFrom(%d): %v", off, err)
		}
		if !bytes.Equal(got, full[off:]) {
			t.Fatalf("ContentsFrom(%d) = %q, want %q", off, got, full[off:])
		}
	}
	if _, err := dev.ContentsFrom(len(full) + 1); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
}
