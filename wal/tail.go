package wal

import (
	"errors"
	"fmt"
	"sync"
)

// Tailer turns a live WAL device into a replication stream: a blocking
// reader that decodes whole units — transaction groups, checkpoints, marks,
// epoch frames — in log order, resumable from a byte-offset/LSN cursor.
// Because log order equals commit order (the writer's sequence gate), the
// unit stream *is* the primary's commit stream, and a replica that applies
// it is the primary at a revision watermark.
//
// The contract with the writer: appends are whole units (the writer encodes
// begin/ops/commit contiguously and hands the device a single buffer), so a
// tailer over a quiescent device never sees a partial unit, and a partial
// unit mid-traffic only means the bytes are still landing — the tailer
// waits. A corrupt frame or a malformed sequence, by contrast, fails the
// tailer permanently: the stream below a live writer is trustworthy, so
// either is real damage.
//
// Next blocks until a unit is readable or the tailer is closed; Kick wakes
// blocked readers (the writer's SetOnAppend hook is the intended caller).
// Tailer methods never call into the writer, so the writer may kick while
// holding its own lock.
type Tailer struct {
	dev Device

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte // unconsumed device bytes starting at offset off
	off    int    // device offset of buf[0] — the consumed prefix
	next   uint64 // expected LSN of the next frame
	closed bool
	err    error // permanent decode failure
}

// UnitKind classifies one replication unit.
type UnitKind uint8

const (
	// UnitTxn is one committed transaction group.
	UnitTxn UnitKind = 1 + iota
	// UnitCheckpoint is one complete in-log snapshot.
	UnitCheckpoint
	// UnitMark is a coordinator resolution marker.
	UnitMark
	// UnitEpoch is a membership/epoch record.
	UnitEpoch
)

// Unit is one decoded replication unit.
type Unit struct {
	Kind UnitKind
	// Txn is the transaction group of a UnitTxn.
	Txn TxnGroup
	// Checkpoint holds the snapshot entries of a UnitCheckpoint.
	Checkpoint []Op
	// TxID is the mark's transaction id (UnitMark) or the epoch number
	// (UnitEpoch).
	TxID uint64
	// Flags carries the frame flags of a UnitMark (FlagGlobal) or the
	// group's flags for a UnitTxn.
	Flags uint8
	// Meta is the membership blob of a UnitEpoch.
	Meta []byte
	// EndLSN is the last frame's LSN; EndOff the device offset just past the
	// unit — together the resume cursor after applying it.
	EndLSN uint64
	EndOff int
}

// ErrTailerClosed reports a Next call on a closed tailer.
var ErrTailerClosed = errors.New("wal: tailer closed")

// ErrBadStream reports a corrupt frame or malformed frame sequence below a
// live log — permanent damage, not a tail still being written.
var ErrBadStream = errors.New("wal: tailer: malformed stream")

// NewTailer builds a tailer over dev resuming at byte offset off, whose
// next frame must carry LSN nextLSN. A fresh replica starts at (0, 1); a
// resuming one passes the EndOff/EndLSN+1 cursor of the last unit it
// applied.
func NewTailer(dev Device, off int, nextLSN uint64) *Tailer {
	t := &Tailer{dev: dev, off: off, next: nextLSN}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// Kick wakes blocked Next callers to re-check the device. The writer's
// SetOnAppend hook calls it after every append.
func (t *Tailer) Kick() {
	t.mu.Lock()
	t.cond.Broadcast()
	t.mu.Unlock()
}

// Close wakes and fails every blocked reader with ErrTailerClosed.
func (t *Tailer) Close() {
	t.mu.Lock()
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
}

// Offset returns the device offset of the first unconsumed byte — the
// validated prefix the tailer has fully decoded.
func (t *Tailer) Offset() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.off
}

// NextLSN returns the LSN the next frame must carry — the promoted writer's
// starting LSN once the stream is drained.
func (t *Tailer) NextLSN() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Next returns the next unit, blocking until one is fully readable. It
// fails with ErrTailerClosed after Close, and permanently with ErrBadStream
// on real stream damage.
func (t *Tailer) Next() (Unit, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.err != nil {
			return Unit{}, t.err
		}
		if t.closed {
			return Unit{}, ErrTailerClosed
		}
		u, ok, err := t.decodeLocked()
		if err != nil {
			return Unit{}, err
		}
		if ok {
			return u, nil
		}
		if t.refreshLocked() {
			continue
		}
		t.cond.Wait()
	}
}

// TryNext returns the next unit without blocking; ok is false when no
// complete unit is readable yet.
func (t *Tailer) TryNext() (Unit, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return Unit{}, false, t.err
	}
	if t.closed {
		return Unit{}, false, ErrTailerClosed
	}
	u, ok, err := t.decodeLocked()
	if err != nil || ok {
		return u, ok, err
	}
	if !t.refreshLocked() {
		return Unit{}, false, nil
	}
	return t.decodeLocked()
}

// refreshLocked pulls newly appended device bytes into the buffer,
// reporting whether any arrived. It prefers the incremental ContentsFrom
// capability (both repo devices implement it) and falls back to a full
// Contents read.
func (t *Tailer) refreshLocked() bool {
	cur := t.off + len(t.buf)
	if t.dev.Size() <= cur {
		return false
	}
	var data []byte
	var err error
	if cf, ok := t.dev.(interface{ ContentsFrom(int) ([]byte, error) }); ok {
		data, err = cf.ContentsFrom(cur)
	} else {
		data, err = t.dev.Contents()
		if err == nil {
			if len(data) < cur {
				err = fmt.Errorf("%w: device shrank below cursor %d", ErrBadStream, cur)
			} else {
				data = data[cur:]
			}
		}
	}
	if err != nil {
		t.err = err
		t.cond.Broadcast()
		return false
	}
	if len(data) == 0 {
		return false
	}
	t.buf = append(t.buf, data...)
	return true
}

// decodeLocked tries to decode one complete unit from the front of the
// buffer, consuming it (and advancing the cursor) only when whole. ok is
// false when the buffer holds a prefix of a unit still being appended.
func (t *Tailer) decodeLocked() (Unit, bool, error) {
	var u Unit
	var open *TxnGroup
	var ckpt []Op
	inCkpt := false
	pos := 0
	lsn := t.next
	for pos < len(t.buf) {
		rec, n, err := Decode(t.buf[pos:])
		if err != nil {
			if errors.Is(err, ErrTorn) {
				return Unit{}, false, nil // frame still landing
			}
			t.err = fmt.Errorf("%w: %v", ErrBadStream, err)
			t.cond.Broadcast()
			return Unit{}, false, t.err
		}
		if rec.LSN != lsn {
			t.err = fmt.Errorf("%w: frame LSN %d, want %d", ErrBadStream, rec.LSN, lsn)
			t.cond.Broadcast()
			return Unit{}, false, t.err
		}
		done := false
		bad := false
		switch rec.Kind {
		case KindBegin:
			if open != nil || inCkpt {
				bad = true
				break
			}
			open = &TxnGroup{TxID: rec.TxID, Cross: rec.Flags&FlagCross != 0}
			u = Unit{Kind: UnitTxn, Flags: rec.Flags}
		case KindOp:
			if open == nil {
				bad = true
				break
			}
			open.Ops = append(open.Ops, rec.Op)
		case KindCommit:
			if open == nil || rec.TxID != open.TxID {
				bad = true
				break
			}
			u.Txn = *open
			u.TxID = open.TxID
			done = true
		case KindCheckpointBegin:
			if open != nil || inCkpt {
				bad = true
				break
			}
			inCkpt = true
			ckpt = []Op{}
			u = Unit{Kind: UnitCheckpoint}
		case KindCheckpointEntry:
			if !inCkpt {
				bad = true
				break
			}
			ckpt = append(ckpt, rec.Op)
		case KindCheckpointEnd:
			if !inCkpt || rec.TxID != uint64(len(ckpt)) {
				bad = true
				break
			}
			u.Checkpoint = ckpt
			done = true
		case KindMark:
			if open != nil || inCkpt {
				bad = true
				break
			}
			u = Unit{Kind: UnitMark, TxID: rec.TxID, Flags: rec.Flags}
			done = true
		case KindEpoch:
			if open != nil || inCkpt {
				bad = true
				break
			}
			u = Unit{Kind: UnitEpoch, TxID: rec.TxID, Meta: rec.Meta}
			done = true
		default:
			bad = true
		}
		if bad {
			t.err = fmt.Errorf("%w: kind %d at LSN %d", ErrBadStream, rec.Kind, rec.LSN)
			t.cond.Broadcast()
			return Unit{}, false, t.err
		}
		pos += n
		lsn++
		if done {
			// Shift in place so the buffer's backing array tops out at the
			// largest backlog instead of pinning the whole log.
			copy(t.buf, t.buf[pos:])
			t.buf = t.buf[:len(t.buf)-pos]
			t.off += pos
			t.next = lsn
			u.EndLSN = lsn - 1
			u.EndOff = t.off
			return u, true, nil
		}
	}
	return Unit{}, false, nil // group still being appended
}
