package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// scanDev scans a device's current contents.
func scanDev(t *testing.T, dev Device) ScanResult {
	t.Helper()
	data, err := dev.Contents()
	if err != nil {
		t.Fatal(err)
	}
	return Scan(data)
}

// TestWriterSequencesByRevision: transactions published out of revision
// order land in the log in revision order — the gate parks the later one
// until its predecessor arrives.
func TestWriterSequencesByRevision(t *testing.T) {
	dev := &MemDevice{}
	w := NewWriter(dev, 1, map[int]uint64{0: 1}, Options{})

	var wg sync.WaitGroup
	wg.Add(1)
	released := make(chan struct{})
	go func() {
		defer wg.Done()
		// Rev 2 first: must wait for rev 1.
		if err := w.Commit(2, 0, []Op{{Part: 0, Kind: OpPut, Key: []byte("b"), Value: []byte("2"), Rev: 2}}); err != nil {
			t.Errorf("commit rev 2: %v", err)
		}
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("rev 2 committed before its predecessor was published")
	case <-time.After(20 * time.Millisecond):
	}
	if err := w.Commit(1, 0, []Op{{Part: 0, Kind: OpPut, Key: []byte("a"), Value: []byte("1"), Rev: 1}}); err != nil {
		t.Fatalf("commit rev 1: %v", err)
	}
	wg.Wait()

	sr := scanDev(t, dev)
	if len(sr.Txns) != 2 {
		t.Fatalf("scanned %d txns, want 2", len(sr.Txns))
	}
	if sr.Txns[0].Ops[0].Rev != 1 || sr.Txns[1].Ops[0].Rev != 2 {
		t.Fatalf("log order %d,%d — not revision order", sr.Txns[0].Ops[0].Rev, sr.Txns[1].Ops[0].Rev)
	}
	if dev.Size() != dev.synced {
		t.Fatalf("unsynced tail after full-durability commits: %d of %d", dev.synced, dev.Size())
	}
}

// TestWriterMultiPartition: a transaction spanning partitions waits for all
// of its per-partition predecessors.
func TestWriterMultiPartition(t *testing.T) {
	dev := &MemDevice{}
	w := NewWriter(dev, 1, map[int]uint64{0: 1, 1: 1}, Options{})
	done := make(chan error, 3)
	// Spans both partitions at revs {0:2, 1:1} — needs 0:1 first.
	go func() {
		done <- w.Commit(10, 0, []Op{
			{Part: 0, Kind: OpPut, Key: []byte("x"), Value: []byte("x"), Rev: 2},
			{Part: 1, Kind: OpPut, Key: []byte("y"), Value: []byte("y"), Rev: 1},
		})
	}()
	time.Sleep(10 * time.Millisecond)
	done <- w.Commit(11, 0, []Op{{Part: 0, Kind: OpPut, Key: []byte("w"), Value: []byte("w"), Rev: 1}})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	sr := scanDev(t, dev)
	if len(sr.Txns) != 2 || sr.Txns[0].TxID != 11 || sr.Txns[1].TxID != 10 {
		t.Fatalf("unexpected log order: %+v", sr.Txns)
	}
}

// TestWriterGroupCommitAmortization: with a slow sync barrier and many
// concurrent committers, transactions per sync must grow well past 1 — the
// whole point of group commit. One writer at a time pays the barrier while
// the rest append behind it and share the next one.
func TestWriterGroupCommitAmortization(t *testing.T) {
	run := func(workers int) float64 {
		dev := &MemDevice{SyncDelay: func() { time.Sleep(200 * time.Microsecond) }}
		w := NewWriter(dev, 1, nil, Options{})
		const perWorker = 40
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					key := []byte(fmt.Sprintf("w%d-%d", g, i))
					if err := w.Commit(uint64(g*1000+i), 0, []Op{{Kind: OpPut, Key: key, Value: key}}); err != nil {
						t.Errorf("commit: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		st := w.Stats()
		if st.Txns != uint64(workers*perWorker) {
			t.Fatalf("logged %d txns, want %d", st.Txns, workers*perWorker)
		}
		return float64(st.Txns) / float64(st.Syncs)
	}
	single := run(1)
	grouped := run(8)
	t.Logf("txns/sync: 1 worker = %.2f, 8 workers = %.2f", single, grouped)
	if grouped < 2 {
		t.Fatalf("8 concurrent committers amortized only %.2f txns/sync", grouped)
	}
}

// TestWriterRelaxedSync: SyncEvery n leaves up to n transactions unsynced;
// an explicit Sync flushes the tail; DurableLSN tracks only synced frames.
func TestWriterRelaxedSync(t *testing.T) {
	dev := &MemDevice{}
	w := NewWriter(dev, 1, nil, Options{SyncEvery: 4})
	for i := 1; i <= 6; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		if err := w.Commit(uint64(i), 0, []Op{{Kind: OpPut, Key: key, Value: key}}); err != nil {
			t.Fatal(err)
		}
	}
	if dev.Syncs() != 1 {
		t.Fatalf("6 commits at SyncEvery=4 issued %d syncs, want 1", dev.Syncs())
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if dev.synced != dev.Size() {
		t.Fatal("explicit Sync left an unsynced tail")
	}
	st := w.Stats()
	if st.DurableLSN == 0 || st.CheckpointLSN > st.DurableLSN {
		t.Fatalf("stats invariant violated: %+v", st)
	}
}

// TestWriterCheckpointAndScan: recovery replays the last complete
// checkpoint plus the suffix; earlier transactions drop out of the scan.
func TestWriterCheckpointAndScan(t *testing.T) {
	dev := &MemDevice{}
	w := NewWriter(dev, 1, nil, Options{})
	for i := 1; i <= 3; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		if err := w.Commit(uint64(i), 0, []Op{{Kind: OpPut, Key: key, Value: key, Rev: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	err := w.Checkpoint(func() ([]Op, error) {
		return []Op{
			{Kind: OpPut, Key: []byte("k1"), Value: []byte("k1"), Rev: 1},
			{Kind: OpPut, Key: []byte("k2"), Value: []byte("k2"), Rev: 2},
			{Kind: OpPut, Key: []byte("k3"), Value: []byte("k3"), Rev: 3},
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(4, 0, []Op{{Kind: OpPut, Key: []byte("k4"), Value: []byte("k4"), Rev: 4}}); err != nil {
		t.Fatal(err)
	}
	sr := scanDev(t, dev)
	if len(sr.Checkpoint) != 3 {
		t.Fatalf("checkpoint has %d entries, want 3", len(sr.Checkpoint))
	}
	if len(sr.Txns) != 1 || sr.Txns[0].Ops[0].Rev != 4 {
		t.Fatalf("post-checkpoint suffix wrong: %+v", sr.Txns)
	}
	st := w.Stats()
	if st.CheckpointLSN == 0 || st.CheckpointLSN > st.DurableLSN {
		t.Fatalf("checkpoint stats: %+v", st)
	}
}

// TestScanTornTail: cutting the log at every byte yields a clean committed
// prefix — never a partial transaction, and ValidBytes never exceeds the
// cut.
func TestScanTornTail(t *testing.T) {
	dev := &MemDevice{}
	w := NewWriter(dev, 1, nil, Options{})
	for i := 1; i <= 5; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		ops := []Op{
			{Kind: OpPut, Key: key, Value: key, Rev: uint64(2*i - 1)},
			{Kind: OpDelete, Key: []byte("tmp"), Rev: uint64(2 * i)},
		}
		if err := w.Commit(uint64(i), 0, ops); err != nil {
			t.Fatal(err)
		}
	}
	data, _ := dev.Contents()
	for cut := 0; cut <= len(data); cut++ {
		sr := Scan(data[:cut])
		if sr.ValidBytes > cut {
			t.Fatalf("cut %d: ValidBytes %d", cut, sr.ValidBytes)
		}
		for i, g := range sr.Txns {
			if len(g.Ops) != 2 {
				t.Fatalf("cut %d: txn %d has %d ops — partial transaction survived", cut, i, len(g.Ops))
			}
			if g.TxID != uint64(i+1) {
				t.Fatalf("cut %d: txn order %d at %d", cut, g.TxID, i)
			}
		}
	}
	// Full log: all five.
	if sr := Scan(data); len(sr.Txns) != 5 {
		t.Fatalf("full scan found %d txns", len(sr.Txns))
	}
}

// TestScanMarks: per-transaction marks accumulate, a global mark clears
// resolved history, and MaxTxID survives the clearing.
func TestScanMarks(t *testing.T) {
	dev := &MemDevice{}
	w := NewWriter(dev, 1, nil, Options{})
	decide := func(txid uint64) {
		ops := []Op{{Part: 1, Kind: OpPut, Key: []byte("k"), Value: []byte("v")}}
		if err := w.Commit(txid, FlagCross, ops); err != nil {
			t.Fatal(err)
		}
	}
	decide(7)
	if err := w.Mark(7, 0); err != nil {
		t.Fatal(err)
	}
	decide(9)
	sr := scanDev(t, dev)
	if !sr.Marks[7] || sr.Marks[9] {
		t.Fatalf("marks: %+v", sr.Marks)
	}
	if len(sr.Txns) != 2 || sr.MaxTxID != 9 {
		t.Fatalf("txns %d maxtxid %d", len(sr.Txns), sr.MaxTxID)
	}
	if err := w.Mark(0, FlagGlobal); err != nil {
		t.Fatal(err)
	}
	decide(12)
	sr = scanDev(t, dev)
	if len(sr.Txns) != 1 || sr.Txns[0].TxID != 12 {
		t.Fatalf("post-global-mark txns: %+v", sr.Txns)
	}
	if sr.MaxTxID != 12 || len(sr.Marks) != 0 {
		t.Fatalf("maxtxid %d marks %v", sr.MaxTxID, sr.Marks)
	}
}

// TestOpenDeviceTruncates: OpenDevice trims a torn tail so appends continue
// from a clean boundary, and NextLSN resumes past the valid prefix.
func TestOpenDeviceTruncates(t *testing.T) {
	dev := &MemDevice{}
	w := NewWriter(dev, 1, nil, Options{})
	if err := w.Commit(1, 0, []Op{{Kind: OpPut, Key: []byte("a"), Value: []byte("1"), Rev: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(2, 0, []Op{{Kind: OpPut, Key: []byte("b"), Value: []byte("2"), Rev: 2}}); err != nil {
		t.Fatal(err)
	}
	data, _ := dev.Contents()
	// Tear mid-way through the second group.
	torn := &MemDevice{}
	if err := torn.Append(data[:len(data)-5]); err != nil {
		t.Fatal(err)
	}
	sr, err := OpenDevice(torn)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Txns) != 1 {
		t.Fatalf("recovered %d txns, want 1", len(sr.Txns))
	}
	if torn.Size() != sr.ValidBytes {
		t.Fatalf("device %d bytes after open, valid %d", torn.Size(), sr.ValidBytes)
	}
	// A fresh writer continues cleanly.
	w2 := NewWriter(torn, sr.NextLSN, map[int]uint64{0: 2}, Options{})
	if err := w2.Commit(9, 0, []Op{{Kind: OpPut, Key: []byte("c"), Value: []byte("3"), Rev: 2}}); err != nil {
		t.Fatal(err)
	}
	sr2 := scanDev(t, torn)
	if len(sr2.Txns) != 2 || string(sr2.Txns[1].Ops[0].Key) != "c" {
		t.Fatalf("post-reopen log: %+v", sr2.Txns)
	}
}

// TestCrashImageCuts: MemStorage crash images respect the global append
// order across devices — a byte survives iff appended before the cut.
func TestCrashImageCuts(t *testing.T) {
	stg := NewMemStorage()
	a, _ := stg.Device("a")
	b, _ := stg.Device("b")
	if err := a.Append([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := b.Append([]byte("bb")); err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]byte("AA")); err != nil {
		t.Fatal(err)
	}
	img := stg.CrashImage(5)
	ia, _ := img.Device("a")
	ib, _ := img.Device("b")
	ca, _ := ia.Contents()
	cb, _ := ib.Contents()
	if string(ca) != "aaaa" || string(cb) != "b" {
		t.Fatalf("crash image at 5: a=%q b=%q", ca, cb)
	}
	if errors.Is(nil, ErrNoWAL) {
		t.Fatal("impossible")
	}
}
