// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark function per artifact; see EXPERIMENTS.md for the mapping
// and cmd/rhbench for the full-scale driver with series output).
//
// Workload sizes here are reduced so `go test -bench=.` completes quickly;
// sub-benchmarks are keyed by engine (and parameters) so benchstat can
// compare series. The metric that carries the paper's claims is
// accesses/op (simulated shared accesses per committed operation — lower is
// better, reported via b.ReportMetric), since host ns/op measures the
// simulator rather than the simulated machine.
package rhtm_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"rhtm"
	"rhtm/containers"
	"rhtm/internal/harness"
	"rhtm/kv"
	"rhtm/store"
	"rhtm/wal"
)

// benchPoint runs b.N operations of workload w on one engine and reports
// both host time and the architectural accesses/op metric.
func benchPoint(b *testing.B, w harness.Workload, engine string, threads int) {
	b.Helper()
	cfg := harness.RunConfig{
		Threads:      threads,
		OpsPerThread: (b.N + threads - 1) / threads,
		Seed:         1,
	}
	b.ResetTimer()
	r, err := harness.Run(w, engine, cfg)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if r.Ops > 0 {
		b.ReportMetric(float64(r.Accesses)/float64(r.Ops), "accesses/op")
		b.ReportMetric(r.Stats.AbortRatio(), "aborts/commit")
	}
}

// --- Figure 1: Constant RB-Tree, 20% writes, instrumentation cost ---

func BenchmarkFig1RBTree20(b *testing.B) {
	engines := []string{harness.EngHTM, harness.EngStdHy, harness.EngTL2, harness.EngRH1Fast}
	for _, eng := range engines {
		for _, threads := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/t=%d", eng, threads), func(b *testing.B) {
				benchPoint(b, harness.RBTreeWorkload(4096, 20), eng, threads)
			})
		}
	}
}

// --- Figure 2 top: RB-Tree with the RH1 Mixed configurations ---

func BenchmarkFig2aRBTree20Mixed(b *testing.B) {
	engines := []string{harness.EngRH1Fast, harness.EngRH1Mix1, harness.EngRH1Mix2, harness.EngStdHy}
	for _, eng := range engines {
		b.Run(eng, func(b *testing.B) {
			benchPoint(b, harness.RBTreeWorkload(4096, 20), eng, 4)
		})
	}
}

func BenchmarkFig2bRBTree80Mixed(b *testing.B) {
	engines := []string{harness.EngRH1Fast, harness.EngRH1Mix1, harness.EngRH1Mix2, harness.EngStdHy}
	for _, eng := range engines {
		b.Run(eng, func(b *testing.B) {
			benchPoint(b, harness.RBTreeWorkload(4096, 80), eng, 4)
		})
	}
}

// --- Figure 2 middle: single-thread speedup rows ---

func BenchmarkFig2cSingleThread(b *testing.B) {
	engines := []string{harness.EngRH1Slow, harness.EngTL2, harness.EngStdHy,
		harness.EngRH1Fast, harness.EngHTM}
	for _, eng := range engines {
		b.Run(eng, func(b *testing.B) {
			benchPoint(b, harness.RBTreeWorkload(4096, 20), eng, 1)
		})
	}
}

// --- Figure 2 bottom tables: single-thread breakdown (20% and 80%) ---

func BenchmarkTab1Breakdown20(b *testing.B) {
	benchBreakdown(b, 20)
}

func BenchmarkTab2Breakdown80(b *testing.B) {
	benchBreakdown(b, 80)
}

// benchBreakdown runs the breakdown-instrumented single-thread configuration
// and reports the phase percentages as benchmark metrics.
func benchBreakdown(b *testing.B, writePct int) {
	engines := []string{harness.EngRH1Slow, harness.EngTL2, harness.EngStdHy,
		harness.EngRH1Fast, harness.EngHTM}
	for _, eng := range engines {
		b.Run(eng, func(b *testing.B) {
			cfg := harness.RunConfig{
				Threads:      1,
				OpsPerThread: b.N,
				Seed:         1,
				Breakdown:    true,
			}
			b.ResetTimer()
			r, err := harness.Run(harness.RBTreeWorkload(2048, writePct), eng, cfg)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if bd := r.Breakdown; bd != nil {
				b.ReportMetric(bd.ReadPct, "read%")
				b.ReportMetric(bd.WritePct, "write%")
				b.ReportMetric(bd.CommitPct, "commit%")
			}
		})
	}
}

// --- Figure 3 left: Constant Hash Table, 20% writes ---

func BenchmarkFig3aHashTable20(b *testing.B) {
	engines := []string{harness.EngHTM, harness.EngStdHy, harness.EngTL2, harness.EngRH1Mix2}
	for _, eng := range engines {
		b.Run(eng, func(b *testing.B) {
			benchPoint(b, harness.HashTableWorkload(2048, 20), eng, 4)
		})
	}
}

// --- Figure 3 middle: Constant Sorted List, 5% writes ---

func BenchmarkFig3bSortedList5(b *testing.B) {
	engines := []string{harness.EngHTM, harness.EngStdHy, harness.EngTL2,
		harness.EngRH1Fast, harness.EngRH1Mix2}
	for _, eng := range engines {
		b.Run(eng, func(b *testing.B) {
			benchPoint(b, harness.SortedListWorkload(256, 5), eng, 4)
		})
	}
}

// --- Figure 3 right: Random Array speedup matrix ---

func BenchmarkFig3cRandomArray(b *testing.B) {
	for _, txLen := range []int{400, 100, 40} {
		for _, writePct := range []int{0, 20, 50, 90} {
			for _, eng := range []string{harness.EngRH1Fast, harness.EngStdHy} {
				b.Run(fmt.Sprintf("len=%d/w=%d/%s", txLen, writePct, eng), func(b *testing.B) {
					benchPoint(b, harness.RandomArrayWorkload(1<<14, txLen, writePct), eng, 4)
				})
			}
		}
	}
}

// --- Extension ext1: GV6 vs GV5 clock ---

func BenchmarkExtClockGV6vsGV5(b *testing.B) {
	for _, gv5 := range []bool{false, true} {
		name := "GV6"
		if gv5 {
			name = "GV5"
		}
		b.Run(name, func(b *testing.B) {
			cfg := harness.RunConfig{Threads: 4, OpsPerThread: (b.N + 3) / 4, Seed: 1, GV5: gv5}
			b.ResetTimer()
			r, err := harness.Run(harness.RBTreeWorkload(2048, 20), harness.EngRH1Mix2, cfg)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.Stats.AbortRatio(), "aborts/commit")
		})
	}
}

// --- Extension ext2: slow-path capacity extension ---

func BenchmarkExtCapacity(b *testing.B) {
	for _, txLen := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("len=%d", txLen), func(b *testing.B) {
			lim := 32
			cfg := harness.RunConfig{Threads: 1, OpsPerThread: b.N, Seed: 1}
			hcfg := harness.CapacityHTMConfig(lim)
			cfg.HTMOverride = &hcfg
			b.ResetTimer()
			r, err := harness.Run(harness.RandomArrayWorkload(1<<14, txLen, 10), harness.EngRH1Mix2, cfg)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if c := r.Stats.Commits(); c > 0 {
				b.ReportMetric(float64(r.Stats.FastCommits)/float64(c), "fast-share")
			}
		})
	}
}

// --- Extension ext3: hybrid designs compared ---

func BenchmarkExtHybrids(b *testing.B) {
	engines := []string{harness.EngRH1Mix2, harness.EngStdHy, harness.EngNoRec, harness.EngPhased}
	for _, eng := range engines {
		b.Run(eng, func(b *testing.B) {
			benchPoint(b, harness.RBTreeWorkload(2048, 20), eng, 4)
		})
	}
}

// --- Extension: YCSB-style workloads on the unified kv.DB interface ---

// benchKV runs b.N operations of one KVSpec through RunKV and reports the
// architectural metrics (see benchPoint).
func benchKV(b *testing.B, spec harness.KVSpec, engine string, threads int) {
	b.Helper()
	cfg := harness.RunConfig{
		Threads:      threads,
		OpsPerThread: (b.N + threads - 1) / threads,
		Seed:         1,
	}
	b.ResetTimer()
	r, err := harness.RunKV(spec, engine, cfg)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if r.Ops > 0 {
		b.ReportMetric(float64(r.Accesses)/float64(r.Ops), "accesses/op")
		b.ReportMetric(r.Stats.AbortRatio(), "aborts/commit")
		if r.OpsPerKInterval > 0 {
			b.ReportMetric(r.OpsPerKInterval, "ops/kinterval")
		}
	}
}

func BenchmarkYCSB(b *testing.B) {
	engines := []string{harness.EngRH1Mix2, harness.EngStdHy, harness.EngTL2}
	for _, mix := range []string{"a", "b", "c", "d", "e", "f"} {
		for _, dist := range []string{harness.DistUniform, harness.DistZipfian} {
			for _, eng := range engines {
				b.Run(fmt.Sprintf("%s/%s/%s", mix, dist, eng), func(b *testing.B) {
					spec := harness.KVSpec{Mix: mix, Records: 2048, ValueBytes: 64,
						Dist: dist, Shards: 4, ScanMax: 50}
					benchKV(b, spec, eng, 4)
				})
			}
		}
	}
}

// --- Extension: the table/ record layer over the KV store ---

// BenchmarkTableQuery runs the planner-driven table mixes — "query"
// (point / index-range / covering order-limit / upsert churn) and "eidx"
// (YCSB-E re-served from a secondary index) — so the record layer's full
// stack (ordered codec, write-through index maintenance, statistics,
// planner) shows up in accesses/op next to the raw KV mixes.
func BenchmarkTableQuery(b *testing.B) {
	engines := []string{harness.EngRH1Mix2, harness.EngTL2}
	for _, mix := range []string{"query", "eidx"} {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("%s/%s", mix, eng), func(b *testing.B) {
				spec := harness.KVSpec{Mix: mix, Records: 1024, ValueBytes: 64,
					Dist: harness.DistUniform, Shards: 4, ScanMax: 16,
					Tables: 2, IdxSel: 32}
				benchKV(b, spec, eng, 4)
			})
		}
	}
}

// --- Extension: batching amortization (the ROADMAP batching item) ---

// BenchmarkBatch sweeps the batch size on YCSB-A: grouping independent
// single-key ops into one transaction amortizes per-transaction overhead
// (clock reads, validation, commit metadata), so accesses/op must fall as
// the batch grows — until aborts of the larger footprint eat the gain.
func BenchmarkBatch(b *testing.B) {
	engines := []string{harness.EngRH1Mix2, harness.EngTL2}
	for _, size := range []int{1, 8, 64} {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("size=%d/%s", size, eng), func(b *testing.B) {
				spec := harness.KVSpec{Mix: "a", Records: 2048, ValueBytes: 64,
					Dist: harness.DistUniform, Shards: 4, BatchSize: size}
				benchKV(b, spec, eng, 4)
			})
		}
	}
}

// --- Extension: share-nothing cluster with cross-System 2PC ---

// BenchmarkClusterYCSB sweeps System count × cross-System transaction
// fraction × engine on the cluster's YCSB-A mix. The scaling metric is
// ops/kinterval (committed ops per 1000 critical-path accesses: the
// busiest System's count, since independent Systems progress in parallel);
// 2pc-share reports how much of the traffic ran the distributed commit.
func BenchmarkClusterYCSB(b *testing.B) {
	engines := []string{harness.EngRH1Mix2, harness.EngTL2}
	for _, systems := range []int{1, 4} {
		for _, cross := range []int{0, 20} {
			if systems == 1 && cross != 0 {
				continue // CrossPct is moot on one System: identical run
			}
			for _, eng := range engines {
				b.Run(fmt.Sprintf("s=%d/x=%d/%s", systems, cross, eng), func(b *testing.B) {
					spec := harness.KVSpec{Mix: "a", Records: 2048, ValueBytes: 64,
						Backend: harness.BackendCluster, Dist: harness.DistUniform,
						Systems: systems, CrossPct: cross}
					benchKV(b, spec, eng, 4)
				})
			}
		}
	}
}

// BenchmarkClusterBank drives the cross-System bank-transfer invariant
// workload (every op a two-account transfer, 50% spanning Systems).
func BenchmarkClusterBank(b *testing.B) {
	for _, eng := range []string{harness.EngRH1Mix2, harness.EngTL2} {
		b.Run(eng, func(b *testing.B) {
			spec := harness.KVSpec{Mix: "bank", Records: 256,
				Backend: harness.BackendCluster, Systems: 4, CrossPct: 50}
			benchKV(b, spec, eng, 4)
		})
	}
}

// --- Extension: coordination scenarios (revisions, leases, watches) ---

// BenchmarkSessionCache measures the lease-TTL'd session cache: zipfian
// gets with miss-driven logins (lease grant + leased put) under continuous
// virtual-time expiry churn, on both backends.
func BenchmarkSessionCache(b *testing.B) {
	engines := []string{harness.EngRH1Mix2, harness.EngTL2}
	for _, backend := range []string{harness.BackendStore, harness.BackendCluster} {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("%s/%s", backend, eng), func(b *testing.B) {
				spec := harness.KVSpec{Mix: "session", Records: 512, ValueBytes: 32,
					Backend: backend, TTL: 8, PumpEvery: 32}
				if backend == harness.BackendCluster {
					spec.Systems = 4
				} else {
					spec.Shards = 4
				}
				benchKV(b, spec, eng, 4)
			})
		}
	}
}

// BenchmarkLockService measures the lease-based lock service: create-only
// CAS acquires, guarded releases, crash-expiry reclaims, and the in-run
// mutual-exclusion audit, on both backends.
func BenchmarkLockService(b *testing.B) {
	engines := []string{harness.EngRH1Mix2, harness.EngTL2}
	for _, backend := range []string{harness.BackendStore, harness.BackendCluster} {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("%s/%s", backend, eng), func(b *testing.B) {
				spec := harness.KVSpec{Mix: "lock", Records: 64,
					Backend: backend, TTL: 8, PumpEvery: 32}
				if backend == harness.BackendCluster {
					spec.Systems = 4
				} else {
					spec.Shards = 4
				}
				benchKV(b, spec, eng, 4)
			})
		}
	}
}

// --- Extension: WAL group commit (the durability layer) ---

// BenchmarkWALGroupCommit sweeps concurrent committers × engine against a
// durable store whose simulated sync barrier costs real time: with one
// committer every transaction pays the barrier; with many, the
// leader-based group commit amortizes one barrier over the whole group, so
// txns/sync climbs with the group size while syncs/op falls — the same
// batch-amortization shape kv.Batch shows for 2PC, now for durability.
func BenchmarkWALGroupCommit(b *testing.B) {
	engines := []string{harness.EngRH1Mix2, harness.EngTL2}
	for _, group := range []int{1, 4, 16} {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("group=%d/%s", group, eng), func(b *testing.B) {
				s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 19))
				engine, err := harness.Build(s, eng, 0)
				if err != nil {
					b.Fatal(err)
				}
				sh := store.NewSharded(s, 4, store.Options{ArenaWords: 1 << 14})
				dev := &wal.MemDevice{SyncDelay: func() { time.Sleep(20 * time.Microsecond) }}
				db, err := kv.OpenLocal(engine, sh, dev)
				if err != nil {
					b.Fatal(err)
				}
				val := bytes.Repeat([]byte{7}, 64)
				per := (b.N + group - 1) / group
				b.ResetTimer()
				var wg sync.WaitGroup
				for g := 0; g < group; g++ {
					g := g
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < per; i++ {
							key := []byte(fmt.Sprintf("key-%02d-%02d", g, i%64))
							if err := db.Put(key, val); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				ws := sh.Stats(containers.SetupTx(s)).WAL
				ops := float64(per * group)
				if ws.Syncs > 0 {
					b.ReportMetric(float64(ws.Syncs)/ops, "syncs/op")
					b.ReportMetric(float64(ws.TxnsLogged)/float64(ws.Syncs), "txns/sync")
				}
			})
		}
	}
}

// --- Extension: real (mutating) red-black tree, enabled by the safe HTM ---

func BenchmarkExtRealRBTree(b *testing.B) {
	engines := []string{harness.EngRH1Mix2, harness.EngTL2}
	for _, eng := range engines {
		b.Run(eng, func(b *testing.B) {
			// The mutating tree never recycles deleted nodes, so the heap is
			// sized from b.N (see RBTreeRealWorkloadOps).
			benchPoint(b, harness.RBTreeRealWorkloadOps(1024, 20, b.N+4096), eng, 4)
		})
	}
}
