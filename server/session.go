package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rhtm/kv"
	"rhtm/obs"
	"rhtm/server/wire"
)

// scanChunk bounds entries per Scan response frame; large results stream
// as a sequence of Entries frames, the last marked FlagFinal.
const scanChunk = 128

// errTxnCondFailed aborts the server-side closure of a client transaction
// whose optimistic conditions no longer hold. It is deliberately NOT
// kv.ErrConflict: the kv retry loop would otherwise re-run the closure up
// to 10k times server-side, revalidating conditions that can never start
// holding again. The client owns the retry — it re-runs its closure
// against fresh reads — so this maps to CodeConflict on the wire and
// surfaces as exactly one kv.ErrConflict per commit attempt.
var errTxnCondFailed = errors.New("server: transaction condition failed")

// conn is one client connection: reader-side session state, the outbound
// response queue its writer drains, and the watch streams it owns.
type conn struct {
	srv        *Server
	cc         countingConn
	out        chan wire.Msg
	writerDone chan struct{}

	// overflow holds responses that found the bounded queue full and must
	// not wait for it — the shared batcher's, whose single loop serves
	// every connection. The writer drains it after each frame and on a
	// flush nudge; growth is bounded by the write timeout killing the
	// stalled connection that let the queue fill.
	ovMu     sync.Mutex
	overflow []wire.Msg
	flush    chan struct{}

	// hardWriteDeadline, when non-zero (unix nanos), caps the writer's
	// rolling per-frame deadline — teardown sets it so a slow-but-alive
	// reader cannot stretch the drain beyond its bound.
	hardWriteDeadline atomic.Int64

	// pending counts in-flight requests — handler goroutines and batched
	// ops — each of which enqueues its response before Done. Teardown
	// waits on it, so the queue never closes under a sender.
	pending sync.WaitGroup
	// sem bounds concurrently executing non-batched requests; the reader
	// blocks acquiring it, converting runaway pipelining into TCP
	// backpressure instead of unbounded goroutines.
	sem chan struct{}

	ctx    context.Context
	cancel context.CancelFunc

	watchMu sync.Mutex
	watches map[uint64]*watchReg
	watchWG sync.WaitGroup

	drainOnce sync.Once
}

func newConn(s *Server, nc net.Conn) *conn {
	ctx, cancel := context.WithCancel(context.Background())
	return &conn{
		srv:        s,
		cc:         countingConn{nc, s.met.bytesIn, s.met.bytesOut},
		out:        make(chan wire.Msg, 256),
		writerDone: make(chan struct{}),
		flush:      make(chan struct{}, 1),
		sem:        make(chan struct{}, s.opts.maxInflight),
		ctx:        ctx,
		cancel:     cancel,
		watches:    make(map[uint64]*watchReg),
	}
}

// beginDrain stops the reader without cutting the socket: in-flight
// requests keep draining through teardown. Idempotent.
func (c *conn) beginDrain() {
	c.drainOnce.Do(func() { c.cc.SetReadDeadline(time.Now()) })
}

// readLoop decodes frames and dispatches until the client disconnects,
// sends garbage, or drain stops the reader — then tears the session down.
func (c *conn) readLoop() {
	br := bufio.NewReaderSize(c.cc, 32<<10)
	for {
		// A fresh frame buffer every read: decoded messages alias it and
		// escape this loop (to the batcher, handler goroutines, and watch
		// subscriptions), so the scratch-reuse optimization ReadMsg offers
		// would corrupt in-flight requests here.
		var frame []byte
		m, err := wire.ReadMsg(br, &frame)
		if err != nil {
			break
		}
		c.srv.met.request(m.Kind)
		c.srv.reqTotal.Add(1)
		if !c.dispatch(m) {
			break
		}
	}
	c.teardown()
}

// teardown completes the session in drain order: cancel watch contexts
// (their streams end with WatchEnd), bound the whole drain — the hard
// deadline caps the writer's rolling per-frame deadlines, and the
// immediate SetWriteDeadline cuts short any write already blocked under a
// longer one — wait for every in-flight response to be enqueued, then
// close the queue so the writer flushes and exits.
func (c *conn) teardown() {
	c.cancel()
	hard := time.Now().Add(c.srv.opts.drain)
	c.hardWriteDeadline.Store(hard.UnixNano())
	c.cc.SetWriteDeadline(hard)
	c.pending.Wait()
	c.watchWG.Wait()
	close(c.out)
	<-c.writerDone
	c.cc.Close()
	c.srv.removeConn(c)
}

// dispatch routes one request. Single-key Get/Put/Delete join the
// cross-connection batcher; watch control runs inline on the reader (so
// subscribe, cancel, and idle stay ordered with each other); everything
// else runs on a semaphore-bounded goroutine. Returns false on a protocol
// violation — a kind only servers may send — which kills the connection.
//
// A frame carrying FlagTraced opens a server-side trace under the
// client's trace id: its stages (queue_wait, batch_wait, engine,
// wal_sync, 2PC phases) are recorded into the flight recorder, and the
// terminal response frame echoes the server's handling time so the
// client can attribute the rest of the round trip to the network.
func (c *conn) dispatch(m wire.Msg) bool {
	var tr *obs.Trace
	if m.Flags&wire.FlagTraced != 0 {
		switch m.Kind {
		case wire.KindWatch, wire.KindWatchCancel, wire.KindWatchIdle:
			// Watch control is stream-oriented (many frames under one id):
			// there is no single handling interval to trace, so the flag is
			// ignored.
		default:
			tr = c.srv.flight.NewTrace(m.Trace, m.Kind.String())
		}
	}
	switch m.Kind {
	case wire.KindWatch:
		c.handleWatch(m)
	case wire.KindWatchCancel:
		c.handleWatchCancel(m)
	case wire.KindWatchIdle:
		c.handleWatchIdle(m)
	case wire.KindHello:
		c.sendT(tr, nil, wire.Msg{ID: m.ID, Kind: wire.KindValue, Value: []byte(c.srv.opts.engine)})
	case wire.KindClockNow:
		c.sendT(tr, nil, wire.Msg{ID: m.ID, Kind: wire.KindOK, Rev: c.srv.db.Clock().Now()})
	case wire.KindGet:
		c.enqueueOp(m, kv.Op{Kind: kv.OpGet, Key: m.Key}, tr)
	case wire.KindDelete:
		c.enqueueOp(m, kv.Op{Kind: kv.OpDelete, Key: m.Key}, tr)
	case wire.KindPut:
		if m.Lease != 0 {
			// Leased puts must observe lease liveness at execution time;
			// they take the ordinary handler path.
			c.spawn(m, tr)
			return true
		}
		c.enqueueOp(m, kv.Op{Kind: kv.OpPut, Key: m.Key, Value: m.Value}, tr)
	case wire.KindGetRev, wire.KindPutIf, wire.KindDeleteIf, wire.KindBatch,
		wire.KindTxn, wire.KindScan, wire.KindGrant, wire.KindKeepAlive,
		wire.KindRevoke, wire.KindExpire, wire.KindCheckpoint, wire.KindMetrics,
		wire.KindFollowerGet, wire.KindTraceDump, wire.KindHealth:
		c.spawn(m, tr)
	default:
		return false
	}
	return true
}

// enqueueOp routes one single-key request into the cross-connection
// batcher, pre-rejecting reserved keys so a bad op never poisons the
// merged transaction it would have joined.
func (c *conn) enqueueOp(m wire.Msg, op kv.Op, tr *obs.Trace) {
	if kv.IsReservedKey(op.Key) {
		c.sendT(tr, kv.ErrReservedKey, errMsg(m.ID, kv.ErrReservedKey))
		return
	}
	c.pending.Add(1)
	c.srv.batch.enqueue(pendingOp{c: c, id: m.ID, op: op, start: time.Now(), tr: tr})
}

func (c *conn) spawn(m wire.Msg, tr *obs.Trace) {
	c.pending.Add(1)
	c.sem <- struct{}{}
	go func() {
		defer func() {
			<-c.sem
			c.pending.Done()
		}()
		if tr != nil {
			// Everything between trace begin (frame decode) and here —
			// reader handoff plus the inflight-semaphore wait — is queueing.
			tr.StageSince(obs.StageQueueWait, tr.Begin())
		}
		start := time.Now()
		c.handle(m, tr)
		c.srv.met.requestNs.Observe(uint64(time.Since(start)))
	}()
}

// sinkOf converts an optional trace into an optional TraceSink without
// producing the classic non-nil interface around a nil pointer.
func sinkOf(tr *obs.Trace) obs.TraceSink {
	if tr == nil {
		return nil
	}
	return tr
}

// handle executes one non-batched request and enqueues its response(s).
func (c *conn) handle(m wire.Msg, tr *obs.Trace) {
	db := c.srv.db
	switch m.Kind {
	case wire.KindGetRev:
		v, rev, err := db.GetRev(m.Key)
		switch {
		case errors.Is(err, kv.ErrNotFound):
			c.sendT(tr, nil, wire.Msg{ID: m.ID, Kind: wire.KindValue, Flags: wire.FlagAbsent})
		case err != nil:
			c.sendT(tr, err, errMsg(m.ID, err))
		default:
			c.sendT(tr, nil, wire.Msg{ID: m.ID, Kind: wire.KindValue, Value: v, Rev: rev})
		}
	case wire.KindPut: // lease-attached (lease 0 went through the batcher)
		c.replyT(tr, m.ID, 0, db.Put(m.Key, m.Value, kv.WithLease(m.Lease)))
	case wire.KindPutIf:
		var err error
		if m.Lease != 0 {
			err = db.PutIf(m.Key, m.Value, m.Rev, kv.WithLease(m.Lease))
		} else {
			err = db.PutIf(m.Key, m.Value, m.Rev)
		}
		c.replyT(tr, m.ID, 0, err)
	case wire.KindDeleteIf:
		c.replyT(tr, m.ID, 0, db.DeleteIf(m.Key, m.Rev))
	case wire.KindBatch:
		var results []kv.OpResult
		var err error
		if bt, ok := db.(batchTracer); ok && tr != nil {
			results, err = bt.BatchTraced(tr, m.Ops)
		} else {
			results, err = db.Batch(m.Ops)
		}
		if err != nil {
			c.sendT(tr, err, errMsg(m.ID, err))
			return
		}
		rs := make([]wire.Result, len(results))
		for i, r := range results {
			rs[i] = wire.Result{Code: wire.CodeOf(r.Err), Value: r.Value}
		}
		c.sendT(tr, nil, wire.Msg{ID: m.ID, Kind: wire.KindResults, Results: rs})
	case wire.KindTxn:
		rev, err := c.srv.execTxn(m.Conds, m.Ops, sinkOf(tr))
		c.replyT(tr, m.ID, rev, err)
	case wire.KindScan:
		c.handleScan(m, tr)
	case wire.KindGrant:
		id, err := db.Grant(m.Rev)
		c.replyT(tr, m.ID, id, err)
	case wire.KindKeepAlive:
		c.replyT(tr, m.ID, 0, db.KeepAlive(m.Lease))
	case wire.KindRevoke:
		c.replyT(tr, m.ID, 0, db.Revoke(m.Lease))
	case wire.KindExpire:
		n, err := db.ExpireLeases()
		c.replyT(tr, m.ID, uint64(n), err)
	case wire.KindCheckpoint:
		c.replyT(tr, m.ID, 0, db.Checkpoint())
	case wire.KindMetrics, wire.KindTraceDump, wire.KindHealth:
		c.handleAdmin(m, tr)
	case wire.KindFollowerGet:
		fr, ok := db.(kv.FollowerReader)
		if !ok {
			err := errors.New("server: backend has no follower-read surface")
			c.sendT(tr, err, errMsg(m.ID, err))
			return
		}
		v, rev, wm, err := fr.ReadAt(m.Key, m.Rev)
		switch {
		case errors.Is(err, kv.ErrNotFound):
			// Absence is a fact at the watermark, not a failure.
			c.sendT(tr, nil, wire.Msg{ID: m.ID, Kind: wire.KindFollowerValue, Flags: wire.FlagAbsent, Lease: wm})
		case err != nil:
			c.sendT(tr, err, errMsg(m.ID, err))
		default:
			c.sendT(tr, nil, wire.Msg{ID: m.ID, Kind: wire.KindFollowerValue, Value: v, Rev: rev, Lease: wm})
		}
	}
}

// sendT enqueues a request's terminal response frame. When the request
// was traced, the frame echoes FlagTraced with the server's handling time
// in the Trace field — the client subtracts it from its observed round
// trip to get the net stage — and the trace is finished into the flight
// recorder. Multi-frame responses (Scan chunks) stamp only the FlagFinal
// frame.
func (c *conn) sendT(tr *obs.Trace, err error, m wire.Msg) {
	if tr != nil {
		m.Flags |= wire.FlagTraced
		m.Trace = uint64(tr.Elapsed())
		tr.Finish(err)
	}
	c.send(m)
}

// reply sends OK carrying rev, or the mapped error.
func (c *conn) reply(id, rev uint64, err error) {
	c.replyT(nil, id, rev, err)
}

// replyT is reply with trace finishing (see sendT).
func (c *conn) replyT(tr *obs.Trace, id, rev uint64, err error) {
	if err != nil {
		c.sendT(tr, err, errMsg(id, err))
		return
	}
	c.sendT(tr, nil, wire.Msg{ID: id, Kind: wire.KindOK, Rev: rev})
}

func errMsg(id uint64, err error) wire.Msg {
	return wire.Msg{ID: id, Kind: wire.KindErr, Code: wire.CodeOf(err), Text: err.Error()}
}

// handleScan streams a range read as chunked Entries frames. The plain
// form snapshots via DB.Scan; FlagWithRev additionally reports each
// yielded key's revision, collected inside one closure transaction so the
// entries form the validated read set of a client-side transaction. Only
// the FlagFinal frame carries the trace stamp — it is the terminal frame.
func (c *conn) handleScan(m wire.Msg, tr *obs.Trace) {
	if m.Flags&wire.FlagWithRev != 0 {
		entries, err := c.srv.scanRev(m.Key, m.End, int(m.Rev), sinkOf(tr))
		if err != nil {
			c.sendT(tr, err, errMsg(m.ID, err))
			return
		}
		c.sendEntries(m.ID, entries, tr)
		return
	}
	var engStart time.Time
	if tr != nil {
		engStart = time.Now()
	}
	it := c.srv.db.Scan(m.Key, m.End, int(m.Rev))
	var chunk []wire.Entry
	for it.Next() {
		chunk = append(chunk, wire.Entry{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
		if len(chunk) == scanChunk {
			c.send(wire.Msg{ID: m.ID, Kind: wire.KindEntries, Entries: chunk})
			chunk = nil
		}
	}
	if tr != nil {
		// A snapshot scan never enters a closure transaction; its engine
		// stage is the iteration itself.
		tr.StageSince(obs.StageEngine, engStart)
	}
	if err := it.Err(); err != nil {
		c.sendT(tr, err, errMsg(m.ID, err))
		return
	}
	c.sendT(tr, nil, wire.Msg{ID: m.ID, Kind: wire.KindEntries, Flags: wire.FlagFinal, Entries: chunk})
}

func (c *conn) sendEntries(id uint64, entries []wire.Entry, tr *obs.Trace) {
	for len(entries) > scanChunk {
		c.send(wire.Msg{ID: id, Kind: wire.KindEntries, Entries: entries[:scanChunk]})
		entries = entries[scanChunk:]
	}
	c.sendT(tr, nil, wire.Msg{ID: id, Kind: wire.KindEntries, Flags: wire.FlagFinal, Entries: entries})
}

// scanRev runs one closure transaction that scans [start, end) and pairs
// every yielded entry with its revision — each Revision call records the
// key in the transaction's read set, mirroring the cluster transaction's
// scan semantics (committed entries are validated; phantoms are not).
func (s *Server) scanRev(start, end []byte, limit int, sink obs.TraceSink) ([]wire.Entry, error) {
	var out []wire.Entry
	fn := func(tx kv.Txn) error {
		out = out[:0]
		it := tx.Scan(start, end, limit)
		for it.Next() {
			e := wire.Entry{
				Key:   append([]byte(nil), it.Key()...),
				Value: append([]byte(nil), it.Value()...),
			}
			rev, err := tx.Revision(e.Key)
			if err != nil {
				return err
			}
			e.Rev = rev
			out = append(out, e)
		}
		return it.Err()
	}
	var err error
	if ut, ok := s.db.(updateRevTracer); ok && sink != nil {
		_, err = ut.UpdateRevTraced(sink, fn)
	} else {
		err = s.db.Update(fn)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// execTxn commits a client-side closure transaction: validate every
// condition (key at exactly the revision the client's reads observed,
// 0 = absent), then apply the buffered ops, all inside one server-side
// closure. A failed condition surfaces as one kv.ErrConflict to the
// client, which re-runs its closure; see errTxnCondFailed.
func (s *Server) execTxn(conds []wire.Cond, ops []kv.Op, sink obs.TraceSink) (kv.Revision, error) {
	for _, cd := range conds {
		if kv.IsReservedKey(cd.Key) {
			return 0, kv.ErrReservedKey
		}
	}
	for _, op := range ops {
		if kv.IsReservedKey(op.Key) {
			return 0, kv.ErrReservedKey
		}
		if op.Kind != kv.OpPut && op.Kind != kv.OpDelete {
			return 0, fmt.Errorf("server: txn op kind %d", op.Kind)
		}
	}
	fn := func(tx kv.Txn) error {
		for _, cd := range conds {
			rev, err := tx.Revision(cd.Key)
			if err != nil {
				return err
			}
			if rev != cd.Rev {
				return errTxnCondFailed
			}
		}
		for _, op := range ops {
			switch op.Kind {
			case kv.OpPut:
				var err error
				if op.Lease != 0 {
					err = tx.Put(op.Key, op.Value, kv.WithLease(op.Lease))
				} else {
					err = tx.Put(op.Key, op.Value)
				}
				if err != nil {
					return err
				}
			case kv.OpDelete:
				if err := tx.Delete(op.Key); err != nil {
					return err
				}
			}
		}
		return nil
	}
	var rev kv.Revision
	var err error
	if ut, ok := s.db.(updateRevTracer); ok && sink != nil {
		rev, err = ut.UpdateRevTraced(sink, fn)
	} else if ur, ok := s.db.(updateRever); ok {
		rev, err = ur.UpdateRev(fn)
	} else {
		err = s.db.Update(fn)
	}
	if errors.Is(err, errTxnCondFailed) {
		return 0, fmt.Errorf("server: optimistic validation failed: %w", kv.ErrConflict)
	}
	return rev, err
}
