package server_test

import (
	"fmt"
	"testing"
	"time"

	"rhtm"
	"rhtm/client"
	"rhtm/cluster"
	"rhtm/kv"
	"rhtm/obs"
	"rhtm/repl"
	"rhtm/server"
	"rhtm/server/wire"
	"rhtm/wal"
)

func newTraceCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	return cluster.MustNew(cluster.Config{
		Systems:    2,
		DataWords:  1 << 15,
		ArenaWords: 1 << 13,
		NewEngine: func(s *rhtm.System) (rhtm.Engine, error) {
			return rhtm.NewTL2(s), nil
		},
	})
}

func stageNames(ts obs.TraceSnapshot) []string {
	var out []string
	for _, st := range ts.Stages {
		out = append(out, st.Name)
	}
	return out
}

func hasStage(ts obs.TraceSnapshot, name string) bool {
	for _, st := range ts.Stages {
		if st.Name == name {
			return true
		}
	}
	return false
}

// lastTrace returns the most recent trace of the given kind in f, waiting
// until cond holds on it (replica_apply annotations arrive after the
// response frame, so the dump converges rather than appears).
func lastTrace(t *testing.T, f *obs.Flight, kind string, cond func(obs.TraceSnapshot) bool) obs.TraceSnapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		d := f.Dump()
		if kd, ok := d.Kinds[kind]; ok && len(kd.Recent) > 0 {
			ts := kd.Recent[len(kd.Recent)-1]
			if cond(ts) {
				return ts
			}
		}
		if time.Now().After(deadline) {
			d := f.Dump()
			t.Fatalf("no %q trace satisfying condition; dump kinds: %+v", kind, d.Kinds)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTraceEndToEnd drives one sampled transaction through the full
// distributed path — client → TCP server → 2-System cluster → WAL group
// commit → 2PC → replica apply — and checks that the trace id on the wire
// links a client-side trace (net stage) to a server-side trace carrying
// the typed stages of every layer, in monotonic order, with a
// byte-identical normalized rendering.
func TestTraceEndToEnd(t *testing.T) {
	db, stg := func() (*kv.ClusterDB, *wal.MemStorage) {
		stg := wal.NewMemStorage()
		db, err := kv.OpenCluster(newTraceCluster(t), stg)
		if err != nil {
			t.Fatal(err)
		}
		return db, stg
	}()
	g, err := repl.NewClusterGroup(db, stg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.AddClusterReplica(newTraceCluster(t)); err != nil {
		t.Fatal(err)
	}

	srv := server.New(db, server.WithReplicaStatus(func() []wire.ReplicaHealth {
		sts := g.Status()
		out := make([]wire.ReplicaHealth, len(sts))
		for i, st := range sts {
			out[i] = wire.ReplicaHealth{
				Name: st.Name, Stream: st.Stream,
				AppliedLSN: st.AppliedLSN, AppliedRev: st.AppliedRev,
				LagFrames: st.LagFrames,
			}
		}
		return out
	}))
	g.SetFlight(srv.Flight())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := client.Dial(addr.String(), client.WithTraceSampling(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A blind-write transaction over enough distinct keys that both
	// Systems participate: the commit runs the full cross-System path
	// (prepare, coordinator decision sync, finish).
	err = cl.Update(func(tx kv.Txn) error {
		for i := 0; i < 8; i++ {
			if err := tx.Put([]byte(fmt.Sprintf("trace-key-%d", i)), []byte("v")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	srvTxn := lastTrace(t, srv.Flight(), "txn", func(ts obs.TraceSnapshot) bool {
		return hasStage(ts, obs.StageReplicaApply)
	})

	const wantTxn = "trace txn\n" +
		"  queue_wait\n" +
		"  engine attempts=1 commit\n" +
		"  2pc_prepare\n" +
		"  wal_sync\n" +
		"  2pc_finish\n" +
		"  replica_apply replica=replica-0\n"
	if got := srvTxn.Render(); got != wantTxn {
		t.Fatalf("server txn trace rendering:\n%s\nwant:\n%s\n(stages: %v)", got, wantTxn, stageNames(srvTxn))
	}
	if srvTxn.CommitRev == 0 {
		t.Fatalf("server txn trace lost its commit revision")
	}
	for _, st := range srvTxn.Stages {
		if st.Start < 0 || st.Dur < 0 {
			t.Fatalf("stage %s has negative stamp: start=%d dur=%d", st.Name, st.Start, st.Dur)
		}
	}

	// The client-side half of the same trace: one net stage, recorded
	// under the identical wire trace id.
	clTxn := lastTrace(t, cl.Flight(), "txn", func(obs.TraceSnapshot) bool { return true })
	if clTxn.ID != srvTxn.ID {
		t.Fatalf("trace ids diverge across the wire: client %d, server %d", clTxn.ID, srvTxn.ID)
	}
	const wantClient = "trace txn\n  net\n"
	if got := clTxn.Render(); got != wantClient {
		t.Fatalf("client txn trace rendering:\n%s\nwant:\n%s", got, wantClient)
	}
	if clTxn.WallNS == 0 || clTxn.Stages[0].Dur <= 0 {
		t.Fatalf("client net stage not stamped: %+v", clTxn)
	}
	// The net stage excludes the server's echoed handling time, so it must
	// be strictly shorter than the whole round trip.
	if uint64(clTxn.Stages[0].Dur) >= clTxn.WallNS {
		t.Fatalf("net stage (%d) not reduced by server handling time (wall %d)", clTxn.Stages[0].Dur, clTxn.WallNS)
	}

	// A traced single-key Put takes the cross-connection batcher path:
	// batch_wait instead of queue_wait, and still links to replica apply.
	if err := cl.Put([]byte("trace-put"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	srvPut := lastTrace(t, srv.Flight(), "put", func(ts obs.TraceSnapshot) bool {
		return hasStage(ts, obs.StageReplicaApply)
	})
	const wantPut = "trace put\n" +
		"  batch_wait\n" +
		"  engine\n" +
		"  replica_apply replica=replica-0\n"
	if got := srvPut.Render(); got != wantPut {
		t.Fatalf("server put trace rendering:\n%s\nwant:\n%s\n(stages: %v)", got, wantPut, stageNames(srvPut))
	}

	// Admin RPCs over the same connection pool.
	h, err := cl.AdminHealth()
	if err != nil {
		t.Fatal(err)
	}
	if h.Requests == 0 || h.UptimeNS == 0 || h.Connections == 0 {
		t.Fatalf("health counters empty: %+v", h)
	}
	if len(h.Replicas) == 0 || h.Replicas[0].Name != "replica-0" {
		t.Fatalf("health replicas: %+v", h.Replicas)
	}
	h2, err := cl.AdminHealth()
	if err != nil {
		t.Fatal(err)
	}
	if h2.Requests <= h.Requests {
		t.Fatalf("request counter not monotone across polls: %d then %d", h.Requests, h2.Requests)
	}

	d, err := cl.AdminTraces()
	if err != nil {
		t.Fatal(err)
	}
	kd, ok := d.Kinds["txn"]
	if !ok || kd.Count == 0 || len(kd.Recent) == 0 {
		t.Fatalf("trace dump missing txn kind: %+v", d.Kinds)
	}
	if st, ok := kd.Stages[obs.Stage2PCPrepare]; !ok || st.Count == 0 {
		t.Fatalf("trace dump missing 2pc_prepare stage stats: %+v", kd.Stages)
	}

	snap, err := cl.AdminMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Flatten()) == 0 {
		t.Fatalf("admin metrics snapshot empty")
	}
}
