package wire

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"rhtm/kv"
)

// The wire codec is the boundary where client requests become server
// transactions; the golden test pins the exact frame bytes (a silent format
// change would strand every deployed client), the corruption tests pin the
// failure mode of every damaged byte — ErrCorrupt or ErrTorn, never a bogus
// decode — and the oversize tests pin the allocation bound on both sides.

// TestWireGoldenVectors pins the exact frame bytes: u32 body length, u32
// CRC-32C, u64 request id, kind, flags, payload — all little-endian, byte
// fields length-prefixed with 0xFFFFFFFF meaning nil. A change here is a
// protocol break.
func TestWireGoldenVectors(t *testing.T) {
	cases := []struct {
		name string
		msg  Msg
		want []byte
	}{
		{
			name: "get",
			msg:  Msg{ID: 7, Kind: KindGet, Key: []byte("k")},
			want: []byte{
				0x0f, 0x00, 0x00, 0x00, // body length 15
				0x83, 0x5f, 0x12, 0x70, // crc32c
				0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // id 7
				0x02,                   // kind get
				0x00,                   // flags
				0x01, 0x00, 0x00, 0x00, // key length 1
				0x6b, // 'k'
			},
		},
		{
			name: "put",
			msg:  Msg{ID: 8, Kind: KindPut, Key: []byte("k"), Value: []byte("vv"), Lease: 5},
			want: []byte{
				0x1d, 0x00, 0x00, 0x00, // body length 29
				0xca, 0xab, 0x22, 0x06, // crc32c
				0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // id 8
				0x04,                   // kind put
				0x00,                   // flags
				0x01, 0x00, 0x00, 0x00, // key length 1
				0x6b,                   // 'k'
				0x02, 0x00, 0x00, 0x00, // value length 2
				0x76, 0x76, // "vv"
				0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // lease 5
			},
		},
		{
			name: "ok",
			msg:  Msg{ID: 9, Kind: KindOK, Rev: 3},
			want: []byte{
				0x12, 0x00, 0x00, 0x00, // body length 18
				0x00, 0x81, 0xce, 0x03, // crc32c
				0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // id 9
				0x15,                                           // kind ok
				0x00,                                           // flags
				0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rev 3
			},
		},
		{
			name: "err",
			msg:  Msg{ID: 10, Kind: KindErr, Code: CodeNotFound, Text: "gone"},
			want: []byte{
				0x13, 0x00, 0x00, 0x00, // body length 19
				0xaa, 0xe6, 0xf1, 0xda, // crc32c
				0x0a, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // id 10
				0x16,                   // kind err
				0x00,                   // flags
				0x02,                   // code not-found
				0x04, 0x00, 0x00, 0x00, // text length 4
				0x67, 0x6f, 0x6e, 0x65, // "gone"
			},
		},
		{
			// A delete event with a nil value: the nil length sentinel is what
			// distinguishes "value elided by the commit log" from empty.
			name: "event-nil-value",
			msg:  Msg{ID: 11, Kind: KindEvent, Code: uint8(kv.EventDelete), Key: []byte("k"), Rev: 12},
			want: []byte{
				0x1c, 0x00, 0x00, 0x00, // body length 28
				0x6c, 0xbc, 0xd8, 0x82, // crc32c
				0x0b, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // id 11
				0x1a,                   // kind event
				0x00,                   // flags
				0x01,                   // event kind delete
				0x01, 0x00, 0x00, 0x00, // key length 1
				0x6b,                   // 'k'
				0xff, 0xff, 0xff, 0xff, // value nil
				0x0c, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rev 12
			},
		},
		{
			name: "txn",
			msg: Msg{ID: 12, Kind: KindTxn,
				Conds: []Cond{{Key: []byte("a"), Rev: 2}},
				Ops:   []kv.Op{{Kind: kv.OpPut, Key: []byte("a"), Value: []byte("b")}}},
			want: []byte{
				0x32, 0x00, 0x00, 0x00, // body length 50
				0xe9, 0x9a, 0xf7, 0x3c, // crc32c
				0x0c, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // id 12
				0x09,                   // kind txn
				0x00,                   // flags
				0x01, 0x00, 0x00, 0x00, // 1 condition
				0x01, 0x00, 0x00, 0x00, // cond key length 1
				0x61,                                           // 'a'
				0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // cond rev 2
				0x01, 0x00, 0x00, 0x00, // 1 op
				0x01,                   // op put
				0x01, 0x00, 0x00, 0x00, // op key length 1
				0x61,                   // 'a'
				0x01, 0x00, 0x00, 0x00, // op value length 1
				0x62,                                           // 'b'
				0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // op lease 0
			},
		},
	}
	for _, c := range cases {
		got, err := Encode(nil, c.msg)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.name, err)
		}
		if !bytes.Equal(got, c.want) {
			t.Errorf("%s: encoded\n % x\nwant\n % x", c.name, got, c.want)
		}
		back, n, err := Decode(c.want)
		if err != nil || n != len(c.want) {
			t.Errorf("%s: decode: n=%d err=%v", c.name, n, err)
			continue
		}
		re, err := Encode(nil, back)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", c.name, err)
		}
		if !bytes.Equal(re, c.want) {
			t.Errorf("%s: decode/encode not canonical:\n % x\nwant\n % x", c.name, re, c.want)
		}
	}
}

// TestWireFollowerRead pins the follower-read pair: the request carries
// Key + Rev (the staleness floor), the response Value + Rev + Lease (the
// watermark), and an absent key keeps its watermark under FlagAbsent.
func TestWireFollowerRead(t *testing.T) {
	msgs := []Msg{
		{ID: 20, Kind: KindFollowerGet, Key: []byte("k"), Rev: 7},
		{ID: 21, Kind: KindFollowerValue, Value: []byte("v"), Rev: 7, Lease: 9},
		{ID: 22, Kind: KindFollowerValue, Flags: FlagAbsent, Lease: 9},
	}
	for _, want := range msgs {
		frame, err := Encode(nil, want)
		if err != nil {
			t.Fatalf("%v: encode: %v", want.Kind, err)
		}
		got, n, err := Decode(frame)
		if err != nil || n != len(frame) {
			t.Fatalf("%v: decode: n=%d err=%v", want.Kind, n, err)
		}
		if got.ID != want.ID || got.Kind != want.Kind || got.Flags != want.Flags ||
			!bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) ||
			got.Rev != want.Rev || got.Lease != want.Lease {
			t.Errorf("%v: round trip got %+v want %+v", want.Kind, got, want)
		}
	}
}

// TestWireCorruption: every single-byte corruption of a frame must be
// rejected with ErrCorrupt (or shorten into ErrTorn via the length word) —
// never decode into a different message.
func TestWireCorruption(t *testing.T) {
	frame, err := Encode(nil, Msg{ID: 3, Kind: KindPutIf,
		Key: []byte("key!"), Value: []byte("value"), Rev: 11, Lease: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		m, n, err := Decode(mut)
		if err == nil {
			t.Fatalf("byte %d corrupted: decoded %+v (%d bytes) instead of failing", i, m, n)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTorn) {
			t.Fatalf("byte %d corrupted: err = %v, want ErrCorrupt or ErrTorn", i, err)
		}
	}
	// A clean tear at every boundary short of the full frame is ErrTorn (or
	// ErrCorrupt when the cut truncates the length word itself).
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := Decode(frame[:cut]); !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d: err = %v", cut, err)
		}
	}
}

// TestWireRejections pins the explicit rejection paths: truncated payloads
// behind a valid checksum, trailing garbage, impossible counts, unknown
// kinds, and the frame size bound on both the encode and decode side.
func TestWireRejections(t *testing.T) {
	// reframe recomputes length and checksum over a mutated body, so the
	// rejection exercised is the payload validation, not the CRC.
	reframe := func(mutate func(body []byte) []byte) []byte {
		frame, err := Encode(nil, Msg{ID: 1, Kind: KindOK, Rev: 7})
		if err != nil {
			t.Fatal(err)
		}
		body := mutate(append([]byte(nil), frame[frameHeader:]...))
		out := make([]byte, frameHeader, frameHeader+len(body))
		out = append(out, body...)
		le := func(off int, v uint32) {
			out[off] = byte(v)
			out[off+1] = byte(v >> 8)
			out[off+2] = byte(v >> 16)
			out[off+3] = byte(v >> 24)
		}
		le(0, uint32(len(body)))
		le(4, crcOf(body))
		return out
	}

	cases := []struct {
		name  string
		frame []byte
	}{
		{"truncated-payload", reframe(func(b []byte) []byte { return b[:len(b)-3] })},
		{"trailing-garbage", reframe(func(b []byte) []byte { return append(b, 0xEE) })},
		{"unknown-kind", reframe(func(b []byte) []byte { b[8] = byte(kindMax); return b })},
		{"bogus-count", func() []byte {
			f, err := Encode(nil, Msg{ID: 2, Kind: KindBatch,
				Ops: []kv.Op{{Kind: kv.OpGet, Key: []byte("k")}}})
			if err != nil {
				t.Fatal(err)
			}
			// Overwrite the op count with an absurd value and refit the CRC.
			body := append([]byte(nil), f[frameHeader:]...)
			body[bodyHeader] = 0xff
			body[bodyHeader+1] = 0xff
			body[bodyHeader+2] = 0xff
			body[bodyHeader+3] = 0x7f
			out := make([]byte, frameHeader, frameHeader+len(body))
			out = append(out, body...)
			out[0] = byte(len(body))
			crc := crcOf(body)
			out[4], out[5], out[6], out[7] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
			return out
		}()},
		{"wraparound-length", func() []byte {
			f, err := Encode(nil, Msg{ID: 3, Kind: KindGet, Key: []byte("key")})
			if err != nil {
				t.Fatal(err)
			}
			// A length word just under the nil sentinel: int(n) would turn
			// negative on 32-bit platforms and slip a signed bound check,
			// so this must reject by unsigned comparison, not panic.
			body := append([]byte(nil), f[frameHeader:]...)
			body[bodyHeader] = 0xfe
			body[bodyHeader+1] = 0xff
			body[bodyHeader+2] = 0xff
			body[bodyHeader+3] = 0xff
			out := make([]byte, frameHeader, frameHeader+len(body))
			out = append(out, body...)
			out[0] = byte(len(body))
			crc := crcOf(body)
			out[4], out[5], out[6], out[7] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
			return out
		}()},
		{"oversized-header", []byte{
			0xff, 0xff, 0xff, 0x07, // body length 1<<27-1 > MaxFrameBody
			0x00, 0x00, 0x00, 0x00,
		}},
		{"undersized-header", []byte{
			0x02, 0x00, 0x00, 0x00, // body length 2 < body header
			0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		}},
	}
	for _, c := range cases {
		if m, n, err := Decode(c.frame); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %+v n=%d err=%v, want ErrCorrupt", c.name, m, n, err)
		}
	}

	// The encode side refuses to build a frame the peer would reject.
	if _, err := Encode(nil, Msg{Kind: KindPut, Key: []byte("k"),
		Value: make([]byte, MaxFrameBody)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized encode: err = %v, want ErrFrameTooLarge", err)
	}
}

func crcOf(body []byte) uint32 { return crc32.Checksum(body, crcTable) }

// TestWireReadMsg pins the streaming form: frames decode in sequence, a
// clean EOF at a boundary is io.EOF, and a cut mid-frame is ErrTorn.
func TestWireReadMsg(t *testing.T) {
	msgs := []Msg{
		{ID: 1, Kind: KindHello},
		{ID: 2, Kind: KindGet, Key: []byte("k")},
		{ID: 3, Kind: KindEntries, Flags: FlagFinal,
			Entries: []Entry{{Key: []byte("a"), Value: []byte{}, Rev: 4}}},
	}
	var buf []byte
	var err error
	for _, m := range msgs {
		if buf, err = Encode(buf, m); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf)
	var scratch []byte
	for i, want := range msgs {
		got, err := ReadMsg(r, &scratch)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got.ID != want.ID || got.Kind != want.Kind || got.Flags != want.Flags {
			t.Fatalf("msg %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadMsg(r, &scratch); err != io.EOF {
		t.Fatalf("at end: err = %v, want io.EOF", err)
	}
	// Cut mid-frame: header-only and mid-body both surface as ErrTorn.
	for _, cut := range []int{3, frameHeader + 2} {
		r := bytes.NewReader(buf[:cut])
		if _, err := ReadMsg(r, &scratch); !errors.Is(err, ErrTorn) {
			t.Fatalf("cut at %d: err = %v, want ErrTorn", cut, err)
		}
	}
}

// TestWireErrorMapping pins the error taxonomy round trip: every kv
// sentinel survives code→error reconstruction under errors.Is, and
// enriched texts keep the server's message.
func TestWireErrorMapping(t *testing.T) {
	sentinels := []error{
		kv.ErrNotFound, kv.ErrConflict, kv.ErrRevisionMismatch,
		kv.ErrLeaseNotFound, kv.ErrReservedKey, kv.ErrArenaFull,
		kv.ErrTooLarge, kv.ErrNoWAL, ErrShutdown,
		kv.ErrTooStale, kv.ErrFenced,
	}
	for _, sent := range sentinels {
		code := CodeOf(sent)
		if code == CodeOK || code == CodeErr {
			t.Fatalf("%v: no code", sent)
		}
		if got := ErrOf(code, sent.Error()); got != sent {
			t.Errorf("%v: bare reconstruction got %v", sent, got)
		}
		wrapped := ErrOf(code, "op failed: "+sent.Error())
		if !errors.Is(wrapped, sent) {
			t.Errorf("%v: wrapped reconstruction lost the sentinel", sent)
		}
		if wrapped.Error() != "op failed: "+sent.Error() {
			t.Errorf("%v: wrapped text = %q", sent, wrapped.Error())
		}
	}
	// A wrapped sentinel maps like the sentinel itself.
	if CodeOf(errRetryWrap{}) != CodeConflict {
		t.Error("wrapped conflict not classified")
	}
	// Unclassified errors degrade to text-only.
	other := ErrOf(CodeErr, "weird")
	if other.Error() != "weird" || errors.Is(other, kv.ErrNotFound) {
		t.Errorf("unclassified error mangled: %v", other)
	}
	if ErrOf(CodeOK, "") != nil {
		t.Error("CodeOK reconstructed non-nil")
	}
}

type errRetryWrap struct{}

func (errRetryWrap) Error() string { return "wrapped" }
func (errRetryWrap) Unwrap() error { return kv.ErrConflict }

// TestWireTracedGoldenVectors pins the FlagTraced encoding: a u64 trace
// word between the body header and the kind's payload, on requests (the
// propagation key) and responses (the server's handling nanoseconds),
// plus the empty-payload admin kinds. A change here is a protocol break.
func TestWireTracedGoldenVectors(t *testing.T) {
	cases := []struct {
		name string
		msg  Msg
		want []byte
	}{
		{
			name: "traced-get",
			msg:  Msg{ID: 7, Kind: KindGet, Flags: FlagTraced, Trace: 0x0102030405060708, Key: []byte("k")},
			want: []byte{
				0x17, 0x00, 0x00, 0x00, // body length 23
				0xb4, 0xbe, 0xcb, 0x15, // crc32c
				0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // id 7
				0x02,                                           // kind get
				0x08,                                           // flags: traced
				0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // trace id
				0x01, 0x00, 0x00, 0x00, // key length 1
				0x6b, // 'k'
			},
		},
		{
			name: "traced-ok",
			msg:  Msg{ID: 7, Kind: KindOK, Flags: FlagTraced, Trace: 1500, Rev: 3},
			want: []byte{
				0x1a, 0x00, 0x00, 0x00, // body length 26
				0x7c, 0xd6, 0x0f, 0xb7, // crc32c
				0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // id 7
				0x15,                                           // kind ok
				0x08,                                           // flags: traced
				0xdc, 0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // server ns 1500
				0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // rev 3
			},
		},
		{
			name: "tracedump",
			msg:  Msg{ID: 13, Kind: KindTraceDump},
			want: []byte{
				0x0a, 0x00, 0x00, 0x00, // body length 10
				0x4c, 0x76, 0x22, 0x86, // crc32c
				0x0d, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // id 13
				0x1e, // kind tracedump
				0x00, // flags
			},
		},
		{
			name: "health",
			msg:  Msg{ID: 14, Kind: KindHealth},
			want: []byte{
				0x0a, 0x00, 0x00, 0x00, // body length 10
				0x25, 0x14, 0x96, 0xcd, // crc32c
				0x0e, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // id 14
				0x1f, // kind health
				0x00, // flags
			},
		},
	}
	for _, c := range cases {
		got, err := Encode(nil, c.msg)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.name, err)
		}
		if !bytes.Equal(got, c.want) {
			t.Errorf("%s: encoded\n % x\nwant\n % x", c.name, got, c.want)
		}
		back, n, err := Decode(c.want)
		if err != nil || n != len(c.want) {
			t.Errorf("%s: decode: n=%d err=%v", c.name, n, err)
			continue
		}
		if back.Trace != c.msg.Trace || back.Flags != c.msg.Flags {
			t.Errorf("%s: trace word round trip: got %d/%#x want %d/%#x",
				c.name, back.Trace, back.Flags, c.msg.Trace, c.msg.Flags)
		}
		re, err := Encode(nil, back)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", c.name, err)
		}
		if !bytes.Equal(re, c.want) {
			t.Errorf("%s: decode/encode not canonical:\n % x\nwant\n % x", c.name, re, c.want)
		}
	}
}

// TestWireUntracedUnchanged: a frame without FlagTraced is byte-identical
// whatever Trace holds — sampling off leaves the wire image exactly as it
// was before tracing existed.
func TestWireUntracedUnchanged(t *testing.T) {
	plain, err := Encode(nil, Msg{ID: 7, Kind: KindGet, Key: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := Encode(nil, Msg{ID: 7, Kind: KindGet, Key: []byte("k"), Trace: 999})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, dirty) {
		t.Fatalf("untraced frame depends on Trace field:\n % x\n % x", plain, dirty)
	}
	m, _, err := Decode(plain)
	if err != nil || m.Trace != 0 {
		t.Fatalf("untraced decode: trace=%d err=%v, want 0/nil", m.Trace, err)
	}
}

// TestWireTracedTruncation: a traced frame whose trace word is cut short
// (behind a refit checksum) is rejected, not misparsed as payload.
func TestWireTracedTruncation(t *testing.T) {
	frame, err := Encode(nil, Msg{ID: 1, Kind: KindClockNow, Flags: FlagTraced, Trace: 77})
	if err != nil {
		t.Fatal(err)
	}
	body := append([]byte(nil), frame[frameHeader:]...)
	body = body[:len(body)-3] // cut into the trace word
	out := make([]byte, frameHeader, frameHeader+len(body))
	out = append(out, body...)
	le := func(off int, v uint32) {
		out[off] = byte(v)
		out[off+1] = byte(v >> 8)
		out[off+2] = byte(v >> 16)
		out[off+3] = byte(v >> 24)
	}
	le(0, uint32(len(body)))
	le(4, crcOf(body))
	if _, _, err := Decode(out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated trace word: err = %v, want ErrCorrupt", err)
	}
}
