package wire

import (
	"bytes"
	"testing"

	"rhtm/kv"
)

// FuzzServerFrame hammers the decoder with arbitrary byte streams: any
// input must either fail with a classified error or decode into a message
// whose canonical re-encoding reproduces the consumed bytes exactly. The
// canonical-bytes property is what lets the server echo ids and forward
// payloads without ever re-interpreting them.
func FuzzServerFrame(f *testing.F) {
	seeds := []Msg{
		{ID: 1, Kind: KindHello},
		{ID: 2, Kind: KindGet, Key: []byte("key")},
		{ID: 3, Kind: KindPut, Key: []byte("k"), Value: []byte("v"), Lease: 9},
		{ID: 4, Kind: KindPutIf, Key: []byte("k"), Value: nil, Rev: 7, Lease: 0},
		{ID: 5, Kind: KindBatch, Ops: []kv.Op{
			{Kind: kv.OpGet, Key: []byte("a")},
			{Kind: kv.OpPut, Key: []byte("b"), Value: []byte("x"), Lease: 2},
			{Kind: kv.OpDelete, Key: []byte("c")},
		}},
		{ID: 6, Kind: KindTxn,
			Conds: []Cond{{Key: []byte("a"), Rev: 1}, {Key: []byte("b"), Rev: 0}},
			Ops:   []kv.Op{{Kind: kv.OpPut, Key: []byte("a"), Value: []byte("z")}}},
		{ID: 7, Kind: KindScan, Flags: FlagWithRev, Key: []byte("a"), End: nil, Rev: 100},
		{ID: 8, Kind: KindWatch, Key: nil, Rev: 12},
		{ID: 9, Kind: KindErr, Code: CodeConflict, Text: "kv: transaction conflict"},
		{ID: 10, Kind: KindEntries, Flags: FlagFinal, Entries: []Entry{
			{Key: []byte("k"), Value: []byte{}, Rev: 3},
			{Key: []byte("l"), Value: nil, Rev: 4},
		}},
		{ID: 11, Kind: KindResults, Results: []Result{
			{Code: CodeOK, Value: []byte("v")},
			{Code: CodeNotFound, Value: nil},
		}},
		{ID: 12, Kind: KindEvent, Code: uint8(kv.EventLost)},
		{ID: 13, Kind: KindValue, Value: bytes.Repeat([]byte{0xAB}, 300), Rev: 1 << 40},
	}
	for _, m := range seeds {
		frame, err := Encode(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		// A deliberately damaged variant seeds the rejection paths.
		if len(frame) > 12 {
			mut := append([]byte(nil), frame...)
			mut[12] ^= 0xFF
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := Decode(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		re, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v (msg %+v)", err, m)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("decode/encode not canonical:\nin  % x\nout % x\nmsg %+v", b[:n], re, m)
		}
		// A second decode of the canonical bytes must agree on the kind and
		// id (full structural equality is implied by canonical bytes).
		m2, n2, err := Decode(re)
		if err != nil || n2 != n || m2.Kind != m.Kind || m2.ID != m.ID {
			t.Fatalf("re-decode diverged: n=%d err=%v", n2, err)
		}
	})
}

// FuzzAdminFrame hammers the tracing and admin extensions: traced frames
// (the u64 trace word between header and payload), the empty-payload
// admin kinds, and their damaged variants must hold the same invariant as
// every other frame — classified rejection or a canonical round trip that
// preserves the trace word bit-exactly.
func FuzzAdminFrame(f *testing.F) {
	seeds := []Msg{
		{ID: 1, Kind: KindTraceDump},
		{ID: 2, Kind: KindHealth},
		{ID: 3, Kind: KindGet, Flags: FlagTraced, Trace: 0xDEADBEEF, Key: []byte("key")},
		{ID: 4, Kind: KindPut, Flags: FlagTraced, Trace: 1, Key: []byte("k"), Value: []byte("v")},
		{ID: 5, Kind: KindOK, Flags: FlagTraced, Trace: 1 << 50, Rev: 9},
		{ID: 6, Kind: KindErr, Flags: FlagTraced, Trace: 7, Code: CodeConflict, Text: "kv: transaction conflict"},
		{ID: 7, Kind: KindValue, Flags: FlagTraced | FlagAbsent, Trace: 42},
		{ID: 8, Kind: KindTxn, Flags: FlagTraced, Trace: 3,
			Conds: []Cond{{Key: []byte("a"), Rev: 1}},
			Ops:   []kv.Op{{Kind: kv.OpPut, Key: []byte("a"), Value: []byte("z")}}},
		{ID: 9, Kind: KindBatch, Flags: FlagTraced, Trace: 11, Ops: []kv.Op{
			{Kind: kv.OpGet, Key: []byte("a")},
			{Kind: kv.OpDelete, Key: []byte("c")},
		}},
		{ID: 10, Kind: KindScan, Flags: FlagTraced | FlagWithRev, Trace: 13, Key: []byte("a"), Rev: 100},
	}
	for _, m := range seeds {
		frame, err := Encode(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		if len(frame) > 12 {
			mut := append([]byte(nil), frame...)
			mut[12] ^= 0xFF
			f.Add(mut)
		}
		// A variant cut inside the trace word seeds the truncation path.
		if m.Flags&FlagTraced != 0 && len(frame) > frameHeader+bodyHeader+4 {
			f.Add(append([]byte(nil), frame[:frameHeader+bodyHeader+4]...))
		}
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := Decode(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if m.Flags&FlagTraced == 0 && m.Trace != 0 {
			t.Fatalf("untraced frame decoded a trace word: %+v", m)
		}
		re, err := Encode(nil, m)
		if err != nil {
			t.Fatalf("re-encode of decoded message failed: %v (msg %+v)", err, m)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("decode/encode not canonical:\nin  % x\nout % x\nmsg %+v", b[:n], re, m)
		}
		m2, n2, err := Decode(re)
		if err != nil || n2 != n || m2.Kind != m.Kind || m2.ID != m.ID || m2.Trace != m.Trace {
			t.Fatalf("re-decode diverged: n=%d err=%v trace %d vs %d", n2, err, m2.Trace, m.Trace)
		}
	})
}
