// Package wire defines the binary protocol the network front end speaks:
// length-prefixed, checksummed frames carrying one request or response
// each, matched by a per-connection request id so sessions can pipeline
// many operations and receive completions out of order. The layout follows
// the WAL record codec (the repo's other wire format): a fixed header whose
// CRC makes truncation and corruption distinguishable, a kind byte that
// selects an exact payload schema, and strict decoding — every frame must
// consume its payload exactly, lengths are bounded before allocation, and
// anything else is ErrCorrupt.
//
// Frame layout (all integers little-endian):
//
//	offset 0  u32  body length B
//	offset 4  u32  CRC-32C over the body
//	offset 8  B bytes of body:
//	          u64  request id
//	          u8   kind
//	          u8   flags
//	          payload (kind-specific, below)
//
// Payloads (bytes = u32 length + bytes, with 0xFFFFFFFF meaning nil):
//
//	Hello, Expire, ClockNow, WatchIdle,
//	Checkpoint, Metrics, WatchEnd:        (empty)
//	Get / GetRev / Delete:                bytes key
//	Put:                                  bytes key, bytes value, u64 lease
//	PutIf:                                bytes key, bytes value, u64 rev,
//	                                      u64 lease
//	DeleteIf:                             bytes key, u64 rev
//	Batch:                                u32 n, n × op
//	Txn:                                  u32 nc, nc × (bytes key, u64 rev),
//	                                      u32 no, no × op
//	Scan:                                 bytes start, bytes end, u64 limit
//	Grant:                                u64 ttl
//	KeepAlive / Revoke:                   u64 lease
//	Watch:                                bytes prefix, u64 fromRev
//	WatchCancel:                          u64 watch id
//	OK:                                   u64 rev
//	Err:                                  u8 code, u32 len, text bytes
//	Value:                                bytes value, u64 rev
//	Entries:                              u32 n, n × (bytes key, bytes value,
//	                                      u64 rev)
//	Results:                              u32 n, n × (u8 code, bytes value)
//	Event:                                u8 event kind, bytes key,
//	                                      bytes value, u64 rev
//
//	op = u8 kind, bytes key, bytes value, u64 lease
//
// Request ids are chosen by the client and never interpreted by the server
// beyond echoing them; a server-push stream (Watch) reuses the subscribing
// request's id for every Event frame and closes with one WatchEnd frame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"rhtm/kv"
)

// Kind classifies a frame. Requests and responses share the space; the
// direction is implied by which side sent it.
type Kind uint8

const (
	// KindHello opens a connection: the response is a Value frame carrying
	// the serving engine's name (the label client-side tracer spans use).
	KindHello Kind = 1 + iota
	// KindGet reads one key (response: Value with rev 0, or Err).
	KindGet
	// KindGetRev reads one key with its revision (response: Value).
	KindGetRev
	// KindPut writes one key (response: OK).
	KindPut
	// KindPutIf is the guarded write (response: OK or Err).
	KindPutIf
	// KindDelete removes one key (response: OK or Err).
	KindDelete
	// KindDeleteIf is the guarded removal (response: OK or Err).
	KindDeleteIf
	// KindBatch executes ops atomically (response: Results or Err).
	KindBatch
	// KindTxn commits a client-side closure: conditions (key, revision
	// observed by the client's reads) plus buffered write ops. The server
	// validates every condition and applies the ops in one transaction
	// (response: OK carrying the commit revision, or Err with CodeConflict
	// when validation failed).
	KindTxn
	// KindScan snapshots a key range (response: one or more Entries frames,
	// the last marked FlagFinal, or Err). FlagWithRev asks for revisions —
	// the form client transactions use to build their read sets.
	KindScan
	// KindGrant mints a lease (response: OK carrying the lease id).
	KindGrant
	// KindKeepAlive extends a lease (response: OK or Err).
	KindKeepAlive
	// KindRevoke revokes a lease and its keys (response: OK or Err).
	KindRevoke
	// KindExpire pumps lease expiry (response: OK carrying the count).
	KindExpire
	// KindClockNow samples the server's virtual clock (response: OK
	// carrying now).
	KindClockNow
	// KindWatch subscribes to commit events under a prefix (response: OK,
	// then server-push Event frames under the same id, then WatchEnd).
	KindWatch
	// KindWatchCancel cancels the watch whose stream id rides in Rev
	// (response: OK under this frame's own id; the cancelled watch id
	// receives its WatchEnd separately). The cancel cannot reuse the
	// watch's id — the stream is still emitting frames under it.
	KindWatchCancel
	// KindWatchIdle blocks until the server's watch machinery for this
	// connection has quiesced (response: OK) — the remote form of the
	// WaitWatchIdle test hook.
	KindWatchIdle
	// KindCheckpoint snapshots the server DB's WAL (response: OK or Err).
	KindCheckpoint
	// KindMetrics samples the server DB's metrics snapshot, JSON-encoded
	// (response: Value).
	KindMetrics
	// KindOK is the generic success response; Rev carries the kind-specific
	// result (commit revision, lease id, count, clock reading).
	KindOK
	// KindErr is the failure response: a code mapping to the kv sentinel
	// taxonomy plus the server's error text.
	KindErr
	// KindValue is a value-bearing response (Get, GetRev, Hello, Metrics).
	KindValue
	// KindEntries is one chunk of a Scan response.
	KindEntries
	// KindResults is a Batch response: per-op outcome codes and values.
	KindResults
	// KindEvent is one server-push watch event.
	KindEvent
	// KindWatchEnd closes a watch stream (after cancel, disconnect, or
	// server shutdown).
	KindWatchEnd
	// KindFollowerGet reads one key at a staleness floor (Rev; 0 = none)
	// against a replica or the primary (response: FollowerValue, or Err
	// with CodeTooStale when the watermark has not reached the floor).
	KindFollowerGet
	// KindFollowerValue answers FollowerGet: the value and its revision as
	// in a Value frame, plus the applied watermark the read is provably
	// current to riding in Lease (FlagAbsent marks a missing key, the
	// watermark still meaningful).
	KindFollowerValue
	// KindTraceDump dumps the server's flight recorder — per-kind slowest
	// and recent-error traces with stage quantiles, JSON-encoded
	// (response: Value).
	KindTraceDump
	// KindHealth reports the server's health view: uptime, connection and
	// request counts, per-replica applied watermarks and lag, JSON-encoded
	// (response: Value).
	KindHealth
	kindMax
)

// kindNames label the server.requests metric and debug output.
var kindNames = [...]string{
	KindHello: "hello", KindGet: "get", KindGetRev: "getrev", KindPut: "put",
	KindPutIf: "putif", KindDelete: "delete", KindDeleteIf: "deleteif",
	KindBatch: "batch", KindTxn: "txn", KindScan: "scan", KindGrant: "grant",
	KindKeepAlive: "keepalive", KindRevoke: "revoke", KindExpire: "expire",
	KindClockNow: "clocknow", KindWatch: "watch", KindWatchCancel: "watchcancel",
	KindWatchIdle: "watchidle", KindCheckpoint: "checkpoint", KindMetrics: "metrics",
	KindOK: "ok", KindErr: "err", KindValue: "value", KindEntries: "entries",
	KindResults: "results", KindEvent: "event", KindWatchEnd: "watchend",
	KindFollowerGet: "followerget", KindFollowerValue: "followervalue",
	KindTraceDump: "tracedump", KindHealth: "health",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Frame flags.
const (
	// FlagWithRev on a Scan request asks for per-entry revisions collected
	// inside one transaction that records every yielded key as a read —
	// the building block of client-side closure transactions.
	FlagWithRev = 1 << 0
	// FlagFinal marks the last Entries chunk of a Scan response.
	FlagFinal = 1 << 1
	// FlagAbsent on a Value response means the key does not exist: GetRev
	// inside a client-side transaction must observe "absent at revision 0"
	// as a condition, not an error, so absence travels as a flag and the
	// public Get/GetRev surface reconstructs kv.ErrNotFound from it.
	FlagAbsent = 1 << 2
	// FlagTraced marks a sampled frame: a u64 trace id follows the body
	// header, before the kind's payload. On a request it is the client's
	// trace id (the propagation key); on a response it echoes the server's
	// handling time in nanoseconds so the client can attribute the
	// remainder of the round trip to the network. Untraced frames carry no
	// extra bytes, so the sampling-off wire image is byte-identical to
	// earlier protocol revisions.
	FlagTraced = 1 << 3
)

// Error codes carried by Err frames and per-op Results, mapping the kv
// sentinel taxonomy across the wire so errors.Is works on both sides.
const (
	// CodeOK is success (only meaningful in per-op Results).
	CodeOK uint8 = iota
	// CodeErr is an unclassified error: only the text survives.
	CodeErr
	// CodeNotFound maps kv.ErrNotFound.
	CodeNotFound
	// CodeConflict maps kv.ErrConflict.
	CodeConflict
	// CodeRevisionMismatch maps kv.ErrRevisionMismatch.
	CodeRevisionMismatch
	// CodeLeaseNotFound maps kv.ErrLeaseNotFound.
	CodeLeaseNotFound
	// CodeReservedKey maps kv.ErrReservedKey.
	CodeReservedKey
	// CodeArenaFull maps kv.ErrArenaFull.
	CodeArenaFull
	// CodeTooLarge maps kv.ErrTooLarge.
	CodeTooLarge
	// CodeNoWAL maps kv.ErrNoWAL.
	CodeNoWAL
	// CodeShutdown maps ErrShutdown: the server is draining and refused or
	// abandoned the request.
	CodeShutdown
	// CodeTooStale maps kv.ErrTooStale: a follower read's staleness floor
	// is above the replica's applied watermark.
	CodeTooStale
	// CodeFenced maps kv.ErrFenced: the server's DB was deposed by an
	// epoch fence — retry against the new primary.
	CodeFenced
)

// ErrShutdown is the sentinel a draining server answers with; clients see
// it (wrapped with the server's text) from every request the shutdown cut.
var ErrShutdown = errors.New("wire: server shutting down")

// ErrTorn reports an incomplete frame: the stream ended mid-record.
var ErrTorn = errors.New("wire: torn frame (stream ends mid-record)")

// ErrCorrupt reports a frame that is complete but fails its checksum,
// carries impossible lengths, or does not consume its payload exactly.
var ErrCorrupt = errors.New("wire: corrupt frame")

// ErrFrameTooLarge reports an Encode whose body would exceed MaxFrameBody;
// the peer would reject it as corrupt, so it is refused at the source.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size bound")

// Cond is one optimistic-validation condition of a Txn commit: the key must
// still be at exactly Rev (0 = still absent).
type Cond struct {
	Key []byte
	Rev uint64
}

// Entry is one key-value-revision triple of an Entries chunk.
type Entry struct {
	Key   []byte
	Value []byte
	Rev   uint64
}

// Result is one per-op outcome of a Results frame.
type Result struct {
	Code  uint8
	Value []byte
}

// Msg is one decoded frame. Only the fields its Kind names are meaningful;
// Encode ignores the rest, Decode leaves them zero.
type Msg struct {
	ID    uint64
	Kind  Kind
	Flags uint8
	// Trace is the FlagTraced word: the trace id on requests, the
	// server's handling nanoseconds on responses. Encoded only when
	// FlagTraced is set.
	Trace   uint64
	Code    uint8 // Err: error code; Event: event kind
	Key     []byte
	Value   []byte
	End     []byte
	Rev     uint64
	Lease   uint64
	Text    string
	Ops     []kv.Op
	Conds   []Cond
	Entries []Entry
	Results []Result
}

// frame header and payload bounds.
const (
	frameHeader = 8  // length + crc
	bodyHeader  = 10 // id + kind + flags
	// MaxFrameBody bounds a frame's body so corrupt length words fail fast
	// instead of allocating gigabytes — the same bound the WAL uses.
	MaxFrameBody = 1 << 26
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// nilLen is the on-wire length word meaning "nil slice" (distinct from
// empty — watch events carry nil values when the commit log elided them).
const nilLen = ^uint32(0)

// Encode appends m as one frame to dst and returns the extended slice, or
// ErrFrameTooLarge when the body would exceed MaxFrameBody.
func Encode(dst []byte, m Msg) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	dst = appendU64(dst, m.ID)
	dst = append(dst, byte(m.Kind), m.Flags)
	if m.Flags&FlagTraced != 0 {
		dst = appendU64(dst, m.Trace)
	}
	switch m.Kind {
	case KindHello, KindExpire, KindClockNow, KindWatchIdle,
		KindCheckpoint, KindMetrics, KindTraceDump, KindHealth, KindWatchEnd:
		// empty payload
	case KindGet, KindGetRev, KindDelete:
		dst = appendBytes(dst, m.Key)
	case KindPut:
		dst = appendBytes(dst, m.Key)
		dst = appendBytes(dst, m.Value)
		dst = appendU64(dst, m.Lease)
	case KindPutIf:
		dst = appendBytes(dst, m.Key)
		dst = appendBytes(dst, m.Value)
		dst = appendU64(dst, m.Rev)
		dst = appendU64(dst, m.Lease)
	case KindDeleteIf:
		dst = appendBytes(dst, m.Key)
		dst = appendU64(dst, m.Rev)
	case KindBatch:
		dst = appendOps(dst, m.Ops)
	case KindTxn:
		dst = appendU32(dst, uint32(len(m.Conds)))
		for _, c := range m.Conds {
			dst = appendBytes(dst, c.Key)
			dst = appendU64(dst, c.Rev)
		}
		dst = appendOps(dst, m.Ops)
	case KindScan:
		dst = appendBytes(dst, m.Key)
		dst = appendBytes(dst, m.End)
		dst = appendU64(dst, m.Rev)
	case KindGrant:
		dst = appendU64(dst, m.Rev)
	case KindKeepAlive, KindRevoke:
		dst = appendU64(dst, m.Lease)
	case KindWatch, KindFollowerGet:
		dst = appendBytes(dst, m.Key)
		dst = appendU64(dst, m.Rev)
	case KindOK, KindWatchCancel:
		dst = appendU64(dst, m.Rev)
	case KindErr:
		dst = append(dst, m.Code)
		dst = appendU32(dst, uint32(len(m.Text)))
		dst = append(dst, m.Text...)
	case KindValue:
		dst = appendBytes(dst, m.Value)
		dst = appendU64(dst, m.Rev)
	case KindFollowerValue:
		dst = appendBytes(dst, m.Value)
		dst = appendU64(dst, m.Rev)
		dst = appendU64(dst, m.Lease)
	case KindEntries:
		dst = appendU32(dst, uint32(len(m.Entries)))
		for _, e := range m.Entries {
			dst = appendBytes(dst, e.Key)
			dst = appendBytes(dst, e.Value)
			dst = appendU64(dst, e.Rev)
		}
	case KindResults:
		dst = appendU32(dst, uint32(len(m.Results)))
		for _, r := range m.Results {
			dst = append(dst, r.Code)
			dst = appendBytes(dst, r.Value)
		}
	case KindEvent:
		dst = append(dst, m.Code)
		dst = appendBytes(dst, m.Key)
		dst = appendBytes(dst, m.Value)
		dst = appendU64(dst, m.Rev)
	default:
		return nil, fmt.Errorf("wire: encode of unknown kind %d", m.Kind)
	}
	body := dst[start+frameHeader:]
	if len(body) > MaxFrameBody {
		return nil, fmt.Errorf("%w: body %d bytes", ErrFrameTooLarge, len(body))
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, crcTable))
	return dst, nil
}

// Decode reads one frame from the front of b, returning the message and the
// bytes consumed. ErrTorn means b ends mid-frame; ErrCorrupt means the
// frame is complete but invalid.
func Decode(b []byte) (Msg, int, error) {
	if len(b) < frameHeader {
		return Msg{}, 0, ErrTorn
	}
	blen := int(binary.LittleEndian.Uint32(b))
	if blen < bodyHeader || blen > MaxFrameBody {
		return Msg{}, 0, fmt.Errorf("%w: body length %d", ErrCorrupt, blen)
	}
	if len(b) < frameHeader+blen {
		return Msg{}, 0, ErrTorn
	}
	body := b[frameHeader : frameHeader+blen]
	if crc := crc32.Checksum(body, crcTable); crc != binary.LittleEndian.Uint32(b[4:]) {
		return Msg{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	m, err := decodeBody(body)
	if err != nil {
		return Msg{}, 0, err
	}
	return m, frameHeader + blen, nil
}

// ReadMsg reads exactly one frame from r. A clean EOF at a frame boundary
// is io.EOF; a stream cut mid-frame is ErrTorn.
func ReadMsg(r io.Reader, scratch *[]byte) (Msg, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Msg{}, ErrTorn
		}
		return Msg{}, err
	}
	blen := int(binary.LittleEndian.Uint32(hdr[:]))
	if blen < bodyHeader || blen > MaxFrameBody {
		return Msg{}, fmt.Errorf("%w: body length %d", ErrCorrupt, blen)
	}
	if cap(*scratch) < blen {
		*scratch = make([]byte, blen)
	}
	body := (*scratch)[:blen]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Msg{}, ErrTorn
		}
		return Msg{}, err
	}
	if crc := crc32.Checksum(body, crcTable); crc != binary.LittleEndian.Uint32(hdr[4:]) {
		return Msg{}, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return decodeBody(body)
}

// WriteMsg encodes m and writes the frame to w in one call.
func WriteMsg(w io.Writer, m Msg) error {
	buf, err := Encode(nil, m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

func decodeBody(body []byte) (Msg, error) {
	m := Msg{
		ID:    binary.LittleEndian.Uint64(body),
		Kind:  Kind(body[8]),
		Flags: body[9],
	}
	d := &decoder{p: body[bodyHeader:]}
	if m.Flags&FlagTraced != 0 {
		m.Trace = d.u64()
	}
	switch m.Kind {
	case KindHello, KindExpire, KindClockNow, KindWatchIdle,
		KindCheckpoint, KindMetrics, KindTraceDump, KindHealth, KindWatchEnd:
		// empty payload
	case KindGet, KindGetRev, KindDelete:
		m.Key = d.bytes()
	case KindPut:
		m.Key = d.bytes()
		m.Value = d.bytes()
		m.Lease = d.u64()
	case KindPutIf:
		m.Key = d.bytes()
		m.Value = d.bytes()
		m.Rev = d.u64()
		m.Lease = d.u64()
	case KindDeleteIf:
		m.Key = d.bytes()
		m.Rev = d.u64()
	case KindBatch:
		m.Ops = d.ops()
	case KindTxn:
		nc := d.count(12) // key length word + rev
		for i := 0; i < nc && d.err == nil; i++ {
			var c Cond
			c.Key = d.bytes()
			c.Rev = d.u64()
			m.Conds = append(m.Conds, c)
		}
		m.Ops = d.ops()
	case KindScan:
		m.Key = d.bytes()
		m.End = d.bytes()
		m.Rev = d.u64()
	case KindGrant:
		m.Rev = d.u64()
	case KindKeepAlive, KindRevoke:
		m.Lease = d.u64()
	case KindWatch, KindFollowerGet:
		m.Key = d.bytes()
		m.Rev = d.u64()
	case KindOK, KindWatchCancel:
		m.Rev = d.u64()
	case KindErr:
		m.Code = d.u8()
		m.Text = string(d.str())
	case KindValue:
		m.Value = d.bytes()
		m.Rev = d.u64()
	case KindFollowerValue:
		m.Value = d.bytes()
		m.Rev = d.u64()
		m.Lease = d.u64()
	case KindEntries:
		n := d.count(16) // two length words + rev
		for i := 0; i < n && d.err == nil; i++ {
			var e Entry
			e.Key = d.bytes()
			e.Value = d.bytes()
			e.Rev = d.u64()
			m.Entries = append(m.Entries, e)
		}
	case KindResults:
		n := d.count(5) // code + length word
		for i := 0; i < n && d.err == nil; i++ {
			var r Result
			r.Code = d.u8()
			r.Value = d.bytes()
			m.Results = append(m.Results, r)
		}
	case KindEvent:
		m.Code = d.u8()
		if d.err == nil && m.Code > uint8(kv.EventLost) {
			return Msg{}, fmt.Errorf("%w: event kind %d", ErrCorrupt, m.Code)
		}
		m.Key = d.bytes()
		m.Value = d.bytes()
		m.Rev = d.u64()
	default:
		return Msg{}, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, m.Kind)
	}
	if d.err != nil {
		return Msg{}, d.err
	}
	if len(d.p) != 0 {
		return Msg{}, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.p))
	}
	return m, nil
}

// decoder walks a payload with sticky-error semantics; every accessor
// returns zero after the first failure.
type decoder struct {
	p   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.p) < 1 {
		d.fail("truncated u8")
		return 0
	}
	v := d.p[0]
	d.p = d.p[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.p) < 4 {
		d.fail("truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.p)
	d.p = d.p[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.p) < 8 {
		d.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.p)
	d.p = d.p[8:]
	return v
}

// bytes reads one nilable byte field: a private copy, nil when the length
// word is the nil sentinel.
func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if n == nilLen {
		return nil
	}
	// Compare in uint64: int(n) would go negative on 32-bit platforms for
	// lengths past MaxInt32 and slip the bound check into a slice panic.
	if uint64(n) > uint64(len(d.p)) {
		d.fail("byte field length %d of %d", n, len(d.p))
		return nil
	}
	v := append([]byte{}, d.p[:n]...)
	d.p = d.p[n:]
	return v
}

// str reads one non-nilable byte field (error text).
func (d *decoder) str() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if uint64(n) > uint64(len(d.p)) { // uint64: see bytes
		d.fail("text length %d of %d", n, len(d.p))
		return nil
	}
	v := d.p[:n]
	d.p = d.p[n:]
	return v
}

// count reads a collection length and bounds it by the minimum encoded
// size of one element, so corrupt counts fail before allocation.
func (d *decoder) count(minElem int) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if uint64(n) > uint64(len(d.p)/minElem) { // uint64: see bytes
		d.fail("count %d exceeds %d payload bytes", n, len(d.p))
		return 0
	}
	return int(n)
}

func (d *decoder) ops() []kv.Op {
	n := d.count(17) // kind + two length words + lease
	var ops []kv.Op
	for i := 0; i < n && d.err == nil; i++ {
		var op kv.Op
		op.Kind = kv.OpKind(d.u8())
		if d.err == nil && op.Kind > kv.OpDelete {
			d.fail("op kind %d", op.Kind)
			return nil
		}
		op.Key = d.bytes()
		op.Value = d.bytes()
		op.Lease = d.u64()
		ops = append(ops, op)
	}
	return ops
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendBytes(dst, v []byte) []byte {
	if v == nil {
		return appendU32(dst, nilLen)
	}
	dst = appendU32(dst, uint32(len(v)))
	return append(dst, v...)
}

func appendOps(dst []byte, ops []kv.Op) []byte {
	dst = appendU32(dst, uint32(len(ops)))
	for _, op := range ops {
		dst = append(dst, byte(op.Kind))
		dst = appendBytes(dst, op.Key)
		dst = appendBytes(dst, op.Value)
		dst = appendU64(dst, op.Lease)
	}
	return dst
}

// CodeOf maps an error to its wire code; unrecognized errors degrade to
// CodeErr (text-only).
func CodeOf(err error) uint8 {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, kv.ErrNotFound):
		return CodeNotFound
	case errors.Is(err, kv.ErrRevisionMismatch):
		return CodeRevisionMismatch
	case errors.Is(err, kv.ErrConflict):
		return CodeConflict
	case errors.Is(err, kv.ErrLeaseNotFound):
		return CodeLeaseNotFound
	case errors.Is(err, kv.ErrReservedKey):
		return CodeReservedKey
	case errors.Is(err, kv.ErrArenaFull):
		return CodeArenaFull
	case errors.Is(err, kv.ErrTooLarge):
		return CodeTooLarge
	case errors.Is(err, kv.ErrNoWAL):
		return CodeNoWAL
	case errors.Is(err, ErrShutdown):
		return CodeShutdown
	case errors.Is(err, kv.ErrTooStale):
		return CodeTooStale
	case errors.Is(err, kv.ErrFenced):
		return CodeFenced
	default:
		return CodeErr
	}
}

// Sentinel returns the kv-surface sentinel a code maps to (nil for CodeOK
// and for the unclassified CodeErr).
func Sentinel(code uint8) error {
	switch code {
	case CodeNotFound:
		return kv.ErrNotFound
	case CodeConflict:
		return kv.ErrConflict
	case CodeRevisionMismatch:
		return kv.ErrRevisionMismatch
	case CodeLeaseNotFound:
		return kv.ErrLeaseNotFound
	case CodeReservedKey:
		return kv.ErrReservedKey
	case CodeArenaFull:
		return kv.ErrArenaFull
	case CodeTooLarge:
		return kv.ErrTooLarge
	case CodeNoWAL:
		return kv.ErrNoWAL
	case CodeShutdown:
		return ErrShutdown
	case CodeTooStale:
		return kv.ErrTooStale
	case CodeFenced:
		return kv.ErrFenced
	default:
		return nil
	}
}

// RemoteError is how a wire Err frame surfaces to callers: it preserves the
// server's text while unwrapping to the sentinel its code names, so
// errors.Is behaves exactly as it would against an in-process DB.
type RemoteError struct {
	Code uint8
	Text string
}

func (e *RemoteError) Error() string {
	if e.Text != "" {
		return e.Text
	}
	return "wire: remote error"
}

func (e *RemoteError) Unwrap() error { return Sentinel(e.Code) }

// ErrOf reconstructs the error an Err frame carries. When the text adds
// nothing over the sentinel, the bare sentinel is returned (per-op batch
// results compare with == in old code paths; keep them working).
func ErrOf(code uint8, text string) error {
	if code == CodeOK {
		return nil
	}
	if sent := Sentinel(code); sent != nil && (text == "" || text == sent.Error()) {
		return sent
	}
	return &RemoteError{Code: code, Text: text}
}
