package wire

// Admin response bodies. The admin kinds (KindMetrics, KindTraceDump,
// KindHealth) answer with JSON inside a Value frame rather than new binary
// layouts: they are low-rate introspection RPCs, and JSON keeps them
// consumable by anything that can open a TCP connection. The bodies for
// KindMetrics and KindTraceDump are obs.Snapshot and obs.FlightDump; the
// KindHealth body is defined here so both ends of the wire (and tools like
// cmd/rhtop) share one schema without importing the server.

// Health is the KindHealth response body: liveness, throughput, and
// per-replica watermarks.
type Health struct {
	// UptimeNS is time since the server was constructed.
	UptimeNS uint64 `json:"uptime_ns"`
	// Connections is the number of currently open client connections.
	Connections int `json:"connections"`
	// Requests counts every request frame ever read — monotone, so two
	// polls measure throughput.
	Requests uint64 `json:"requests"`
	// AwaitingApply is how many traced commit revisions still await a
	// replica apply (0 in replica-less deployments).
	AwaitingApply int `json:"awaiting_apply"`
	// Replicas reports the server's configured replica-status source;
	// absent without one.
	Replicas []ReplicaHealth `json:"replicas,omitempty"`
}

// ReplicaHealth is one replica stream's applied watermark and lag as
// reported by KindHealth.
type ReplicaHealth struct {
	// Name is the replica's membership name.
	Name string `json:"name"`
	// Stream names the WAL stream within the replica (one per System).
	Stream string `json:"stream"`
	// AppliedLSN is the stream's applied log cursor.
	AppliedLSN uint64 `json:"applied_lsn"`
	// AppliedRev is the stream's applied revision watermark.
	AppliedRev uint64 `json:"applied_rev"`
	// LagFrames is how many LSNs the cursor trails the primary writer.
	LagFrames uint64 `json:"lag_frames"`
}
