package server_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"rhtm"
	"rhtm/client"
	"rhtm/kv"
	"rhtm/obs"
	"rhtm/server"
	"rhtm/server/wire"
	"rhtm/store"
)

func newLocalDB(t *testing.T, reg *obs.Registry) kv.DB {
	t.Helper()
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
	sh := store.NewSharded(s, 4, store.Options{ArenaWords: 1 << 13})
	return kv.NewLocal(rhtm.NewTL2(s), sh, kv.WithMetrics(reg))
}

// waitGoroutines polls until the process goroutine count drops back to at
// most limit, failing after the deadline. Polling replaces a leak-checker
// dependency: the count is noisy (runtime helpers come and go) but a real
// session leak holds goroutines forever and can never converge.
func waitGoroutines(t *testing.T, limit int, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		n := runtime.NumGoroutine()
		if n <= limit {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("%d goroutines still alive (limit %d):\n%s",
				n, limit, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerDisconnectMidPipeline slams connections shut while requests,
// transactions, and watch streams are in flight, and asserts the server
// sheds every per-connection goroutine — no leaked sessions, no stuck
// batch windows — while staying healthy for the next client.
func TestServerDisconnectMidPipeline(t *testing.T) {
	reg := obs.NewRegistry()
	srv := server.New(newLocalDB(t, reg), server.WithMetrics(reg))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	baseline := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		cl, err := client.Dial(addr.String(), client.WithConns(2))
		if err != nil {
			t.Fatalf("round %d: dial: %v", round, err)
		}
		if _, err := cl.Watch(context.Background(), []byte("w-"), 0); err != nil {
			t.Fatalf("round %d: watch: %v", round, err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					k := []byte(fmt.Sprintf("k-%d-%d", w, i%16))
					if err := cl.Put(k, k); err != nil {
						return // connection cut mid-pipeline: expected
					}
					if _, err := cl.Get(k); err != nil {
						return
					}
				}
			}()
		}
		time.Sleep(20 * time.Millisecond) // let the pipeline fill
		cl.Close()                        // abrupt: in-flight requests die
		wg.Wait()
	}
	// Every session's reader, writer, handlers, and watch streams must
	// unwind; the +4 slack absorbs runtime noise, not leaks (a leaked
	// session costs at least 2 goroutines per round = 10 here).
	waitGoroutines(t, baseline+4, 5*time.Second)

	cl, err := client.Dial(addr.String())
	if err != nil {
		t.Fatalf("post-disconnect dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Put([]byte("alive"), []byte("yes")); err != nil {
		t.Fatalf("server unhealthy after disconnects: %v", err)
	}
}

// TestServerShutdownDrains closes the server under load: every client
// call must resolve — success or a clean error, never a hang — watch
// channels must close (the drain sends WatchEnd), Close must return, and
// later calls must fail fast.
func TestServerShutdownDrains(t *testing.T) {
	reg := obs.NewRegistry()
	srv := server.New(newLocalDB(t, reg), server.WithMetrics(reg))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(addr.String(), client.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	wch, err := cl.Watch(context.Background(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("d-%d-%d", w, i%8))
				if err := cl.Put(k, k); err != nil {
					return // the shutdown cut us off: a clean error, done
				}
			}
		}()
	}
	time.Sleep(30 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain within 10s")
	}
	close(stop)
	wg.Wait() // every worker resolved: no call may hang across shutdown

	// The drain ends watch streams with WatchEnd, so the channel closes
	// without the watcher cancelling anything.
	deadline := time.After(5 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-wch:
			open = ok
		case <-deadline:
			t.Fatal("watch channel still open after server shutdown")
		}
	}

	if err := cl.Put([]byte("late"), []byte("x")); err == nil {
		t.Fatal("Put succeeded against a closed server")
	}
}

// mustWrite sends pre-encoded frames on a raw test connection.
func mustWrite(t *testing.T, nc net.Conn, frames []byte) {
	t.Helper()
	if _, err := nc.Write(frames); err != nil {
		t.Fatalf("raw write: %v", err)
	}
}

// readFor reads frames off a raw connection until one carries id,
// skipping unrelated frames (watch events, other responses).
func readFor(t *testing.T, nc net.Conn, br *bufio.Reader, id uint64) wire.Msg {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		var scratch []byte
		m, err := wire.ReadMsg(br, &scratch)
		if err != nil {
			t.Fatalf("raw read waiting for id %d: %v", id, err)
		}
		if m.ID == id {
			return m
		}
	}
}

// TestStalledReaderDoesNotBlockBatcher pins the batcher's non-blocking
// response invariant: a client that pipelines single-key requests and
// never reads a byte back fills its connection's outbound queue and TCP
// window, and the shared merge loop must keep serving every other
// connection regardless — its responses to the stalled connection go
// through the overflow path, and the write timeout eventually declares
// that connection dead instead of wedging Get/Put/Delete fleet-wide.
func TestStalledReaderDoesNotBlockBatcher(t *testing.T) {
	// The write timeout is deliberately far beyond the test window: the
	// healthy connection must stay served by the overflow path alone, not
	// by the deadline killing the stalled peer.
	reg := obs.NewRegistry()
	srv := server.New(newLocalDB(t, reg), server.WithMetrics(reg),
		server.WithWriteTimeout(time.Minute))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A fat value makes each pipelined Get response ~16KiB, so a few
	// thousand responses overrun any kernel socket buffering and force the
	// stalled connection's outbound queue to its bound.
	seed, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 16<<10)
	if err := seed.Put([]byte("stall"), big); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	raw, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var frames []byte
	for i := 0; i < 2048; i++ {
		frames, err = wire.Encode(frames, wire.Msg{
			ID: uint64(i + 1), Kind: wire.KindGet, Key: []byte("stall")})
		if err != nil {
			t.Fatal(err)
		}
	}
	mustWrite(t, raw, frames) // pipelined flood; this side never reads

	// A healthy connection's batched ops must keep completing while the
	// stalled peer's queue is full.
	cl, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 100; i++ {
			if err := cl.Put([]byte("live"), []byte("v")); err != nil {
				done <- err
				return
			}
			if _, err := cl.Get([]byte("live")); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("healthy connection failed behind a stalled peer: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batcher wedged behind a connection that stopped reading")
	}
}

// TestWatchIdleRejectsActiveWatch pins the deadlock fix on the inline
// WatchIdle handler: issued while a watch is still active (no cancel
// requested), it must answer an error — blocking the reader there could
// never resolve, since the stream only ends through teardown, which needs
// that same reader to exit. After the cancel, idle succeeds.
func TestWatchIdleRejectsActiveWatch(t *testing.T) {
	srv := server.New(newLocalDB(t, obs.NewRegistry()))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raw, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	br := bufio.NewReader(raw)
	enc := func(m wire.Msg) []byte {
		b, err := wire.Encode(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	mustWrite(t, raw, enc(wire.Msg{ID: 1, Kind: wire.KindWatch, Key: []byte("wi-")}))
	if m := readFor(t, raw, br, 1); m.Kind != wire.KindOK {
		t.Fatalf("watch subscribe answered %v, want OK", m.Kind)
	}

	mustWrite(t, raw, enc(wire.Msg{ID: 2, Kind: wire.KindWatchIdle}))
	if m := readFor(t, raw, br, 2); m.Kind != wire.KindErr {
		t.Fatalf("watch idle over an active watch answered %v, want Err", m.Kind)
	}

	// Cancel (the target watch id rides in Rev), then idle must succeed:
	// every registered stream is now guaranteed to end on its own.
	mustWrite(t, raw, enc(wire.Msg{ID: 3, Kind: wire.KindWatchCancel, Rev: 1}))
	if m := readFor(t, raw, br, 3); m.Kind != wire.KindOK {
		t.Fatalf("watch cancel answered %v, want OK", m.Kind)
	}
	mustWrite(t, raw, enc(wire.Msg{ID: 4, Kind: wire.KindWatchIdle}))
	if m := readFor(t, raw, br, 4); m.Kind != wire.KindOK {
		t.Fatalf("watch idle after cancel answered %v (%s), want OK", m.Kind, m.Text)
	}
}

// TestBatcherMergesAcrossConnections drives concurrent single-key requests
// from many connections and asserts the cross-connection batcher actually
// merged them: the server.batch_fill histogram must record more ops than
// batches. A generous window makes merging deterministic under load.
func TestBatcherMergesAcrossConnections(t *testing.T) {
	reg := obs.NewRegistry()
	srv := server.New(newLocalDB(t, reg), server.WithMetrics(reg),
		server.WithBatchWindow(2*time.Millisecond))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := client.Dial(addr.String(), client.WithConns(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Put([]byte("shared"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := cl.Get([]byte("shared")); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	snap := reg.Snapshot()
	h, ok := snap.Histograms["server.batch_fill"]
	if !ok || h.Count == 0 {
		t.Fatalf("no batches recorded: %+v", snap.Histograms)
	}
	if h.Sum <= h.Count {
		t.Fatalf("batcher never merged: %d ops across %d batches", h.Sum, h.Count)
	}
}

// TestBatcherHardErrorFallback pins the degradation contract: when one op
// poisons the merged transaction (an oversized value fails the whole
// kv.Batch), the batcher re-executes the batch individually, so innocent
// neighbors still succeed and only the culprit fails.
func TestBatcherHardErrorFallback(t *testing.T) {
	reg := obs.NewRegistry()
	srv := server.New(newLocalDB(t, reg), server.WithMetrics(reg),
		server.WithBatchWindow(5*time.Millisecond))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := client.Dial(addr.String(), client.WithConns(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	huge := make([]byte, 1<<19) // beyond the largest arena size class
	var wg sync.WaitGroup
	errs := make([]error, 8)
	var hugeErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		hugeErr = cl.Put([]byte("poison"), huge)
	}()
	for i := range errs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = cl.Put([]byte(fmt.Sprintf("ok-%d", i)), []byte("v"))
		}()
	}
	wg.Wait()

	if !errors.Is(hugeErr, kv.ErrTooLarge) {
		t.Fatalf("oversized Put: %v, want ErrTooLarge", hugeErr)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("innocent Put %d failed alongside the poisoned op: %v", i, err)
		}
	}
	for i := range errs {
		if _, err := cl.Get([]byte(fmt.Sprintf("ok-%d", i))); err != nil {
			t.Fatalf("ok-%d unreadable: %v", i, err)
		}
	}
}
