package server_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"rhtm"
	"rhtm/client"
	"rhtm/kv"
	"rhtm/obs"
	"rhtm/server"
	"rhtm/store"
)

func newLocalDB(t *testing.T, reg *obs.Registry) kv.DB {
	t.Helper()
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
	sh := store.NewSharded(s, 4, store.Options{ArenaWords: 1 << 13})
	return kv.NewLocal(rhtm.NewTL2(s), sh, kv.WithMetrics(reg))
}

// waitGoroutines polls until the process goroutine count drops back to at
// most limit, failing after the deadline. Polling replaces a leak-checker
// dependency: the count is noisy (runtime helpers come and go) but a real
// session leak holds goroutines forever and can never converge.
func waitGoroutines(t *testing.T, limit int, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		n := runtime.NumGoroutine()
		if n <= limit {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("%d goroutines still alive (limit %d):\n%s",
				n, limit, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerDisconnectMidPipeline slams connections shut while requests,
// transactions, and watch streams are in flight, and asserts the server
// sheds every per-connection goroutine — no leaked sessions, no stuck
// batch windows — while staying healthy for the next client.
func TestServerDisconnectMidPipeline(t *testing.T) {
	reg := obs.NewRegistry()
	srv := server.New(newLocalDB(t, reg), server.WithMetrics(reg))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	baseline := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		cl, err := client.Dial(addr.String(), client.WithConns(2))
		if err != nil {
			t.Fatalf("round %d: dial: %v", round, err)
		}
		if _, err := cl.Watch(context.Background(), []byte("w-"), 0); err != nil {
			t.Fatalf("round %d: watch: %v", round, err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					k := []byte(fmt.Sprintf("k-%d-%d", w, i%16))
					if err := cl.Put(k, k); err != nil {
						return // connection cut mid-pipeline: expected
					}
					if _, err := cl.Get(k); err != nil {
						return
					}
				}
			}()
		}
		time.Sleep(20 * time.Millisecond) // let the pipeline fill
		cl.Close()                        // abrupt: in-flight requests die
		wg.Wait()
	}
	// Every session's reader, writer, handlers, and watch streams must
	// unwind; the +4 slack absorbs runtime noise, not leaks (a leaked
	// session costs at least 2 goroutines per round = 10 here).
	waitGoroutines(t, baseline+4, 5*time.Second)

	cl, err := client.Dial(addr.String())
	if err != nil {
		t.Fatalf("post-disconnect dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Put([]byte("alive"), []byte("yes")); err != nil {
		t.Fatalf("server unhealthy after disconnects: %v", err)
	}
}

// TestServerShutdownDrains closes the server under load: every client
// call must resolve — success or a clean error, never a hang — watch
// channels must close (the drain sends WatchEnd), Close must return, and
// later calls must fail fast.
func TestServerShutdownDrains(t *testing.T) {
	reg := obs.NewRegistry()
	srv := server.New(newLocalDB(t, reg), server.WithMetrics(reg))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(addr.String(), client.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	wch, err := cl.Watch(context.Background(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("d-%d-%d", w, i%8))
				if err := cl.Put(k, k); err != nil {
					return // the shutdown cut us off: a clean error, done
				}
			}
		}()
	}
	time.Sleep(30 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain within 10s")
	}
	close(stop)
	wg.Wait() // every worker resolved: no call may hang across shutdown

	// The drain ends watch streams with WatchEnd, so the channel closes
	// without the watcher cancelling anything.
	deadline := time.After(5 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-wch:
			open = ok
		case <-deadline:
			t.Fatal("watch channel still open after server shutdown")
		}
	}

	if err := cl.Put([]byte("late"), []byte("x")); err == nil {
		t.Fatal("Put succeeded against a closed server")
	}
}

// TestBatcherMergesAcrossConnections drives concurrent single-key requests
// from many connections and asserts the cross-connection batcher actually
// merged them: the server.batch_fill histogram must record more ops than
// batches. A generous window makes merging deterministic under load.
func TestBatcherMergesAcrossConnections(t *testing.T) {
	reg := obs.NewRegistry()
	srv := server.New(newLocalDB(t, reg), server.WithMetrics(reg),
		server.WithBatchWindow(2*time.Millisecond))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := client.Dial(addr.String(), client.WithConns(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Put([]byte("shared"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := cl.Get([]byte("shared")); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	snap := reg.Snapshot()
	h, ok := snap.Histograms["server.batch_fill"]
	if !ok || h.Count == 0 {
		t.Fatalf("no batches recorded: %+v", snap.Histograms)
	}
	if h.Sum <= h.Count {
		t.Fatalf("batcher never merged: %d ops across %d batches", h.Sum, h.Count)
	}
}

// TestBatcherHardErrorFallback pins the degradation contract: when one op
// poisons the merged transaction (an oversized value fails the whole
// kv.Batch), the batcher re-executes the batch individually, so innocent
// neighbors still succeed and only the culprit fails.
func TestBatcherHardErrorFallback(t *testing.T) {
	reg := obs.NewRegistry()
	srv := server.New(newLocalDB(t, reg), server.WithMetrics(reg),
		server.WithBatchWindow(5*time.Millisecond))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := client.Dial(addr.String(), client.WithConns(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	huge := make([]byte, 1<<19) // beyond the largest arena size class
	var wg sync.WaitGroup
	errs := make([]error, 8)
	var hugeErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		hugeErr = cl.Put([]byte("poison"), huge)
	}()
	for i := range errs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = cl.Put([]byte(fmt.Sprintf("ok-%d", i)), []byte("v"))
		}()
	}
	wg.Wait()

	if !errors.Is(hugeErr, kv.ErrTooLarge) {
		t.Fatalf("oversized Put: %v, want ErrTooLarge", hugeErr)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("innocent Put %d failed alongside the poisoned op: %v", i, err)
		}
	}
	for i := range errs {
		if _, err := cl.Get([]byte(fmt.Sprintf("ok-%d", i))); err != nil {
			t.Fatalf("ok-%d unreadable: %v", i, err)
		}
	}
}
