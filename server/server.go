// Package server exposes a kv.DB over TCP. The protocol (server/wire) is
// length-prefixed, checksummed, and pipelined: every request carries a
// client-chosen id, responses are matched by id and may complete out of
// order, and watch subscriptions turn into server-push Event streams under
// the subscribing request's id.
//
// The connection machinery follows the classic three-way split: an accept
// loop (this file), per-connection session state with a reader goroutine
// that dispatches requests (session.go), and a dedicated response writer
// per connection draining an outbound queue (out.go) — so a slow client
// backpressures its own connection without ever blocking another.
//
// Two throughput features ride on top. Independent single-key requests
// (Get, unleased Put, Delete) from ALL connections are funneled into one
// group-commit batcher (batch.go) that merges whatever accumulated behind
// a small time/size window into a single kv.DB.Batch — the network-side
// analogue of the WAL's group commit. And watch events flow through the kv
// layer's bounded per-subscriber queues, so the coalesce-then-EventLost
// overflow contract survives the wire unchanged (watch.go).
package server

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rhtm/kv"
	"rhtm/obs"
	"rhtm/server/wire"
)

// ErrServerClosed is returned by Serve after Close, and by Start/Serve on
// a server that was already shut down.
var ErrServerClosed = errors.New("server: closed")

// Defaults for the tunables; see the corresponding options.
const (
	// DefaultBatchWindow is how long the batcher waits for stragglers
	// after the first op of a batch arrives. Small on purpose: the window
	// exists to merge genuinely concurrent arrivals, not to tax an
	// unpipelined client's latency.
	DefaultBatchWindow = 100 * time.Microsecond
	// DefaultBatchMax caps ops merged into one kv.DB.Batch.
	DefaultBatchMax = 32
	// DefaultDrainTimeout bounds how long Close waits for in-flight
	// responses to reach clients before cutting connections.
	DefaultDrainTimeout = 2 * time.Second
	// DefaultWriteTimeout is the rolling per-write deadline on every
	// connection's outbound socket: a client that stops reading stalls its
	// writer at most this long before the write fails and the connection
	// degrades to discarding — which is what keeps one stalled reader from
	// wedging senders (the shared batcher above all) forever.
	DefaultWriteTimeout = 2 * time.Second
	// defaultMaxInflight bounds concurrently executing non-batched
	// requests per connection (the pipelining depth one session can force
	// on the DB's bounded session pools).
	defaultMaxInflight = 64
)

// Option configures a Server.
type Option func(*options)

type options struct {
	reg          *obs.Registry
	engine       string
	batchWindow  time.Duration
	batchMax     int
	drain        time.Duration
	writeTimeout time.Duration
	maxInflight  int
	flight       *obs.Flight
	replicas     func() []wire.ReplicaHealth
	closeDump    io.Writer
}

// WithMetrics registers the server's instruments (server.* names; see
// metrics.go) in reg. Pass the same registry the DB was built with
// (kv.WithMetrics) and the server's counters appear in DB.Metrics()
// snapshots alongside the engine and store taxonomy. Nil (the default)
// disables server-side instrumentation.
func WithMetrics(reg *obs.Registry) Option {
	return func(o *options) { o.reg = reg }
}

// WithEngineName sets the engine label the server answers Hello with —
// clients stamp it on tracer spans. Defaults to "net".
func WithEngineName(name string) Option {
	return func(o *options) { o.engine = name }
}

// WithBatchWindow sets how long the cross-connection batcher holds an
// underfull batch open for stragglers. Zero disables the wait (each batch
// is whatever queued while the previous one executed).
func WithBatchWindow(d time.Duration) Option {
	return func(o *options) { o.batchWindow = d }
}

// WithBatchMax caps the ops merged into one kv.DB.Batch.
func WithBatchMax(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.batchMax = n
		}
	}
}

// WithDrainTimeout bounds how long Close waits for in-flight responses to
// drain before cutting connections.
func WithDrainTimeout(d time.Duration) Option {
	return func(o *options) { o.drain = d }
}

// WithWriteTimeout sets the rolling deadline each outbound frame write
// gets before the connection is declared stalled and degrades to
// discarding responses.
func WithWriteTimeout(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.writeTimeout = d
		}
	}
}

// WithFlight injects the flight recorder traced requests are retained in.
// Wire the same Flight into repl.Group.SetFlight and traces gain their
// replica_apply stage. The default is a fresh recorder of default depth —
// KindTraceDump always has something to serve.
func WithFlight(f *obs.Flight) Option {
	return func(o *options) {
		if f != nil {
			o.flight = f
		}
	}
}

// WithReplicaStatus injects the per-replica watermark source KindHealth
// reports (typically a thin adapter over repl.Group.Status). Nil — the
// default — reports no replicas.
func WithReplicaStatus(fn func() []wire.ReplicaHealth) Option {
	return func(o *options) { o.replicas = fn }
}

// WithCloseDump makes Close write the flight recorder's final dump,
// JSON-encoded, to w — the post-mortem slow-op log for a server that is
// going away along with its in-memory traces.
func WithCloseDump(w io.Writer) Option {
	return func(o *options) { o.closeDump = w }
}

// Server serves one kv.DB to many connections.
type Server struct {
	db     kv.DB
	opts   options
	met    serverMetrics
	batch  *batcher
	flight *obs.Flight
	start  time.Time
	wg     sync.WaitGroup // serve loops + per-connection lifecycles
	connWG sync.WaitGroup // per-connection teardown completion

	// reqTotal counts every request frame read, independent of the
	// optional registry — KindHealth's throughput-monotonicity field.
	reqTotal atomic.Uint64

	mu     sync.Mutex
	lns    []net.Listener
	conns  map[*conn]struct{}
	closed bool
}

// New builds a Server around db. The server does not own the DB: Close
// drains connections but leaves db running.
func New(db kv.DB, opts ...Option) *Server {
	o := options{
		engine:       "net",
		batchWindow:  DefaultBatchWindow,
		batchMax:     DefaultBatchMax,
		drain:        DefaultDrainTimeout,
		writeTimeout: DefaultWriteTimeout,
		maxInflight:  defaultMaxInflight,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.flight == nil {
		o.flight = obs.NewFlight(0)
	}
	s := &Server{
		db:     db,
		opts:   o,
		met:    newServerMetrics(o.reg),
		flight: o.flight,
		start:  time.Now(),
		conns:  make(map[*conn]struct{}),
	}
	s.batch = newBatcher(db, o.batchWindow, o.batchMax, &s.met)
	return s
}

// Flight returns the server's flight recorder — wire it to
// repl.Group.SetFlight so traces gain their replica_apply stage, or dump
// it directly in tests.
func (s *Server) Flight() *obs.Flight { return s.flight }

// Serve accepts connections on ln until Close. It returns ErrServerClosed
// after a clean shutdown, or the listener's error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.startConn(nc)
	}
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral test port) and
// serves in a background goroutine, returning the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Close shuts the server down in drain order: stop accepting, stop
// reading new requests, finish every in-flight request and push its
// response (bounded by the drain timeout), end watch streams with
// WatchEnd frames, then cut the connections. Safe to call twice.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.connWG.Wait()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	lns := s.lns
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.beginDrain()
	}
	// Teardown (session.go) completes each connection's in-flight work;
	// the batcher must keep executing until the last one is done.
	s.connWG.Wait()
	s.batch.close()
	s.wg.Wait()
	if s.opts.closeDump != nil {
		// The final flight-recorder dump: every in-flight request has
		// drained, so this is the complete slow-op log of the run.
		if err := writeFlightDump(s.opts.closeDump, s.flight); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) startConn(nc net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	c := newConn(s, nc)
	s.conns[c] = struct{}{}
	s.connWG.Add(1)
	s.mu.Unlock()
	s.met.connections.Add(1)
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		c.writeLoop()
	}()
	go func() {
		defer s.wg.Done()
		c.readLoop()
	}()
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.met.connections.Add(-1)
	s.connWG.Done()
}

// updateRever is the optional backend surface that reports the commit
// revision of a closure transaction — both kv backends implement it; the
// Txn handler uses it so clients can stamp CommitRev on tracer spans.
type updateRever interface {
	UpdateRev(fn func(tx kv.Txn) error) (kv.Revision, error)
}

// updateRevTracer is the traced form of updateRever: the sink receives
// the engine/wal_sync/2PC stages of the closure transaction. Both kv
// backends implement it.
type updateRevTracer interface {
	UpdateRevTraced(sink obs.TraceSink, fn func(tx kv.Txn) error) (kv.Revision, error)
}

// batchTracer is the traced form of DB.Batch; both kv backends implement
// it. The shared batcher passes an obs.MultiSink so every traced op in a
// merged batch receives the one underlying transaction's stages.
type batchTracer interface {
	BatchTraced(sink obs.TraceSink, ops []kv.Op) ([]kv.OpResult, error)
}

// watchIdler is the optional quiesce hook both kv backends implement.
type watchIdler interface {
	WaitWatchIdle()
}
