package server

import (
	"context"
	"fmt"

	"rhtm/kv"
	"rhtm/server/wire"
)

// Watch control runs inline on the reader goroutine — subscribe, cancel,
// and idle must stay ordered with one another, and the byte stream is the
// ordering. Event delivery runs on one goroutine per stream, pushing
// frames under the subscribing request's id; the kv layer's bounded
// per-subscriber queue (coalesce, then EventLost) sits between commits
// and this goroutine, so a slow client degrades exactly like a slow
// in-process consumer.

// watchReg is one registered watch stream: its context's cancel, and
// whether a cancel has been requested — the bit WatchIdle needs to know
// the stream is guaranteed to end on its own.
type watchReg struct {
	cancel    context.CancelFunc
	cancelled bool
}

// handleWatch subscribes and starts the stream: OK, then Event frames,
// then one WatchEnd after cancel, disconnect, or server drain.
func (c *conn) handleWatch(m wire.Msg) {
	c.watchMu.Lock()
	if _, dup := c.watches[m.ID]; dup {
		c.watchMu.Unlock()
		c.send(errMsg(m.ID, fmt.Errorf("server: watch id %d already active", m.ID)))
		return
	}
	ctx, cancel := context.WithCancel(c.ctx)
	ch, err := c.srv.db.Watch(ctx, m.Key, m.Rev)
	if err != nil {
		c.watchMu.Unlock()
		cancel()
		c.send(errMsg(m.ID, err))
		return
	}
	c.watches[m.ID] = &watchReg{cancel: cancel}
	c.watchWG.Add(1)
	c.watchMu.Unlock()
	c.send(wire.Msg{ID: m.ID, Kind: wire.KindOK})
	go c.streamWatch(m.ID, ch, cancel)
}

func (c *conn) streamWatch(id uint64, ch <-chan kv.Event, cancel context.CancelFunc) {
	defer c.watchWG.Done()
	for ev := range ch {
		if ev.Kind == kv.EventLost {
			c.srv.met.watchLost.Inc()
		}
		c.send(wire.Msg{
			ID: id, Kind: wire.KindEvent, Code: uint8(ev.Kind),
			Key: ev.Key, Value: ev.Value, Rev: ev.Rev,
		})
	}
	c.send(wire.Msg{ID: id, Kind: wire.KindWatchEnd})
	cancel()
	c.watchMu.Lock()
	delete(c.watches, id)
	c.watchMu.Unlock()
}

// handleWatchCancel stops the watch whose stream id rides in Rev. The
// acknowledgment answers the cancel's own id; the stream keeps draining
// already-queued events and closes with its WatchEnd. Cancelling a watch
// that already ended is a no-op, not an error — the races are benign.
func (c *conn) handleWatchCancel(m wire.Msg) {
	c.watchMu.Lock()
	reg := c.watches[m.Rev]
	if reg != nil {
		reg.cancelled = true
	}
	c.watchMu.Unlock()
	if reg != nil {
		reg.cancel()
	}
	c.send(wire.Msg{ID: m.ID, Kind: wire.KindOK})
}

// handleWatchIdle answers once this connection's watch streams have ended
// and the DB's watch machinery has quiesced — the remote form of the
// WaitWatchIdle test hook. Blocking the reader is the point: the client
// sends it only after cancelling its watches, and the ordered byte stream
// guarantees those cancels were dispatched first. Blocking is only safe,
// though, when every remaining stream is certain to end on its own — a
// stream whose cancel was never requested ends only through teardown,
// which needs this very reader to exit — so an idle issued over active
// watches is answered with an error instead of a deadlock.
func (c *conn) handleWatchIdle(m wire.Msg) {
	c.watchMu.Lock()
	active := 0
	for _, reg := range c.watches {
		if !reg.cancelled {
			active++
		}
	}
	c.watchMu.Unlock()
	if active > 0 {
		c.send(errMsg(m.ID, fmt.Errorf("server: watch idle with %d uncancelled watch(es)", active)))
		return
	}
	c.watchWG.Wait()
	if idler, ok := c.srv.db.(watchIdler); ok {
		idler.WaitWatchIdle()
	}
	c.send(wire.Msg{ID: m.ID, Kind: wire.KindOK})
}
