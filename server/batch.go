package server

import (
	"time"

	"rhtm/kv"
	"rhtm/obs"
	"rhtm/server/wire"
)

// pendingOp is one single-key request parked in the batcher: enough to
// execute it and route its response back to the owning connection.
type pendingOp struct {
	c     *conn
	id    uint64
	op    kv.Op
	start time.Time
	// tr is the op's server-side trace when the request frame carried
	// FlagTraced; the batcher stamps its batch_wait stage and broadcasts
	// the merged transaction's stages to it.
	tr *obs.Trace
}

// batcher merges independent single-key requests from every connection
// into shared kv.DB.Batch transactions — the network-side analogue of WAL
// group commit. One goroutine owns the merge loop: it takes the first
// queued op, holds the batch open for stragglers behind a small time/size
// window, executes, responds, repeats. While a batch executes, arrivals
// queue up and form the next one, so fill scales with offered load and an
// idle server adds at most one window of latency. The single loop also
// gives batched ops a total order matching arrival order — a pipelined
// Put→Get on one connection observes the Put.
type batcher struct {
	db     kv.DB
	window time.Duration
	max    int
	met    *serverMetrics
	ch     chan pendingOp
	done   chan struct{}
}

func newBatcher(db kv.DB, window time.Duration, max int, met *serverMetrics) *batcher {
	b := &batcher{
		db:     db,
		window: window,
		max:    max,
		met:    met,
		ch:     make(chan pendingOp, 4096),
		done:   make(chan struct{}),
	}
	go b.loop()
	return b
}

// enqueue parks one op. The caller already holds a slot in its
// connection's pending WaitGroup; exec releases it after responding.
func (b *batcher) enqueue(p pendingOp) {
	b.ch <- p
}

// close stops the loop after the queue drains. Callers must guarantee no
// further enqueues — the server closes connections first.
func (b *batcher) close() {
	close(b.ch)
	<-b.done
}

func (b *batcher) loop() {
	defer close(b.done)
	var timer *time.Timer
	for {
		first, ok := <-b.ch
		if !ok {
			return
		}
		batch := append(make([]pendingOp, 0, b.max), first)
		if b.window > 0 {
			if timer == nil {
				timer = time.NewTimer(b.window)
			} else {
				timer.Reset(b.window)
			}
		fill:
			for len(batch) < b.max {
				select {
				case p, ok := <-b.ch:
					if !ok {
						break fill
					}
					batch = append(batch, p)
				case <-timer.C:
					break fill
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		} else {
		drain:
			for len(batch) < b.max {
				select {
				case p, ok := <-b.ch:
					if !ok {
						break drain
					}
					batch = append(batch, p)
				default:
					break drain
				}
			}
		}
		b.exec(batch)
	}
}

// exec runs one merged batch and routes per-op responses. A hard failure
// of the merged transaction must not fail unrelated ops riding in it —
// one op's oversized value is not its neighbors' problem — so the whole
// batch degrades to individual execution.
func (b *batcher) exec(batch []pendingOp) {
	b.met.batchFill.Observe(uint64(len(batch)))
	ops := make([]kv.Op, len(batch))
	var sink obs.MultiSink
	for i, p := range batch {
		ops[i] = p.op
		if p.tr != nil {
			// From enqueue until the merged transaction starts, the op sat
			// in the batcher's window.
			p.tr.StageSince(obs.StageBatchWait, p.start)
			sink = append(sink, p.tr)
		}
	}
	var results []kv.OpResult
	var err error
	if bt, ok := b.db.(batchTracer); ok && len(sink) > 0 {
		// Every traced op in the merged batch shares the one underlying
		// transaction, so each receives its engine/wal_sync/2PC stages.
		results, err = bt.BatchTraced(sink, ops)
	} else {
		results, err = b.db.Batch(ops)
	}
	if err != nil || len(results) != len(batch) {
		for _, p := range batch {
			b.execOne(p)
		}
		return
	}
	for i, p := range batch {
		b.respond(p, results[i].Value, results[i].Err)
	}
}

func (b *batcher) execOne(p pendingOp) {
	var v []byte
	var err error
	switch p.op.Kind {
	case kv.OpGet:
		v, err = b.db.Get(p.op.Key)
	case kv.OpPut:
		err = b.db.Put(p.op.Key, p.op.Value)
	case kv.OpDelete:
		err = b.db.Delete(p.op.Key)
	}
	b.respond(p, v, err)
}

// respond routes one op's response through sendNoWait: the single merge
// loop serves every connection, so it must never block on one
// connection's stalled reader (out.go holds the invariant; the write
// timeout bounds the resulting overflow).
func (b *batcher) respond(p pendingOp, v []byte, err error) {
	var m wire.Msg
	switch {
	case err != nil:
		m = errMsg(p.id, err)
	case p.op.Kind == kv.OpGet:
		m = wire.Msg{ID: p.id, Kind: wire.KindValue, Value: v}
	default:
		m = wire.Msg{ID: p.id, Kind: wire.KindOK}
	}
	if p.tr != nil {
		m.Flags |= wire.FlagTraced
		m.Trace = uint64(p.tr.Elapsed())
		p.tr.Finish(err)
	}
	p.c.sendNoWait(m)
	b.met.requestNs.Observe(uint64(time.Since(p.start)))
	p.c.pending.Done()
}
