package server

import (
	"bufio"
	"net"

	"rhtm/obs"
	"rhtm/server/wire"
)

// countingConn feeds server.bytes_in / server.bytes_out. It wraps the raw
// socket below the bufio layers, so it counts wire bytes, not calls.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(uint64(n))
	return n, err
}

// send enqueues one response frame. It blocks when the outbound queue is
// full — that backpressure is the design: a slow reader stalls its own
// connection's handlers (and, through the bounded inflight semaphore, its
// reader), never another connection. Safe from any handler goroutine
// until teardown closes the queue, which happens only after every
// in-flight sender is accounted for.
func (c *conn) send(m wire.Msg) {
	c.out <- m
}

// writeLoop is the connection's dedicated response writer: it serializes
// frames from the outbound queue onto the socket, flushing whenever the
// queue goes momentarily empty so pipelined completions coalesce into few
// syscalls. After the first write error it keeps draining the queue and
// discards — senders must never wedge on a dead client — until teardown
// closes the queue.
func (c *conn) writeLoop() {
	bw := bufio.NewWriterSize(c.cc, 32<<10)
	var buf []byte
	var werr error
	for m := range c.out {
		if werr != nil {
			continue
		}
		b, err := wire.Encode(buf[:0], m)
		if err != nil {
			// The only encode failure is a frame over MaxFrameBody (an
			// oversized scan entry); degrade to an error response so the
			// request id still completes client-side.
			b, _ = wire.Encode(buf[:0], wire.Msg{
				ID: m.ID, Kind: wire.KindErr,
				Code: wire.CodeTooLarge, Text: err.Error(),
			})
		}
		buf = b
		if _, err := bw.Write(b); err != nil {
			werr = err
			continue
		}
		if len(c.out) == 0 {
			if err := bw.Flush(); err != nil {
				werr = err
			}
		}
	}
	if werr == nil {
		bw.Flush()
	}
	close(c.writerDone)
}
