package server

import (
	"bufio"
	"net"
	"time"

	"rhtm/obs"
	"rhtm/server/wire"
)

// countingConn feeds server.bytes_in / server.bytes_out. It wraps the raw
// socket below the bufio layers, so it counts wire bytes, not calls.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(uint64(n))
	return n, err
}

// send enqueues one response frame. It blocks when the outbound queue is
// full — that backpressure is the design for per-connection senders: a
// slow reader stalls its own connection's handlers (and, through the
// bounded inflight semaphore, its reader), never another connection. The
// stall is bounded, not indefinite: the writer's rolling deadline
// (writeTimeout) fails the stalled write and flips the writer to discard
// mode, which keeps draining the queue. Safe from any handler goroutine
// until teardown closes the queue, which happens only after every
// in-flight sender is accounted for.
func (c *conn) send(m wire.Msg) {
	c.out <- m
}

// sendNoWait enqueues one response frame without ever blocking: the
// bounded queue when it has room, the overflow buffer otherwise. Reserved
// for the shared batcher — its single merge loop serves every connection,
// so one connection's full queue must never stall it (out-of-order
// delivery relative to queued frames is fine: batched ops are single
// frames matched by id). Overflow growth is bounded by the write timeout:
// a connection that lets its queue fill is dead to the writer within
// writeTimeout, after which both queue and overflow drain as discards.
func (c *conn) sendNoWait(m wire.Msg) {
	select {
	case c.out <- m:
		return
	default:
	}
	c.ovMu.Lock()
	c.overflow = append(c.overflow, m)
	c.ovMu.Unlock()
	select {
	case c.flush <- struct{}{}:
	default:
	}
}

// takeOverflow claims the buffered overflow frames, if any.
func (c *conn) takeOverflow() []wire.Msg {
	c.ovMu.Lock()
	ov := c.overflow
	c.overflow = nil
	c.ovMu.Unlock()
	return ov
}

// armWriteDeadline sets the rolling per-frame write deadline, capped by
// teardown's hard drain bound once that is set.
func (c *conn) armWriteDeadline() {
	d := time.Now().Add(c.srv.opts.writeTimeout)
	if hard := c.hardWriteDeadline.Load(); hard != 0 {
		if h := time.Unix(0, hard); h.Before(d) {
			d = h
		}
	}
	c.cc.SetWriteDeadline(d)
}

// writeLoop is the connection's dedicated response writer: it serializes
// frames from the outbound queue (and the batcher's overflow buffer) onto
// the socket, flushing whenever the queue goes momentarily empty so
// pipelined completions coalesce into few syscalls. Every write runs
// under a rolling deadline; after the first write error — a dead or
// stalled client — it keeps draining and discards, so senders never wedge
// on a connection that stopped reading, until teardown closes the queue.
func (c *conn) writeLoop() {
	bw := bufio.NewWriterSize(c.cc, 32<<10)
	var buf []byte
	var werr error
	writeMsg := func(m wire.Msg) {
		if werr != nil {
			return
		}
		b, err := wire.Encode(buf[:0], m)
		if err != nil {
			// The only encode failure is a frame over MaxFrameBody (an
			// oversized scan entry); degrade to an error response so the
			// request id still completes client-side.
			b, _ = wire.Encode(buf[:0], wire.Msg{
				ID: m.ID, Kind: wire.KindErr,
				Code: wire.CodeTooLarge, Text: err.Error(),
			})
		}
		buf = b
		c.armWriteDeadline()
		if _, err := bw.Write(b); err != nil {
			werr = err
		}
	}
	for {
		select {
		case m, ok := <-c.out:
			if !ok {
				// Teardown closed the queue after the last sender finished:
				// whatever sits in overflow is final.
				for _, m := range c.takeOverflow() {
					writeMsg(m)
				}
				if werr == nil {
					c.armWriteDeadline()
					bw.Flush()
				}
				close(c.writerDone)
				return
			}
			writeMsg(m)
		case <-c.flush:
		}
		for _, m := range c.takeOverflow() {
			writeMsg(m)
		}
		if werr == nil && len(c.out) == 0 {
			c.armWriteDeadline()
			if err := bw.Flush(); err != nil {
				werr = err
			}
		}
	}
}
