package server

import (
	"encoding/json"
	"io"
	"time"

	"rhtm/obs"
	"rhtm/server/wire"
)

// Admin introspection RPCs: three empty-payload request kinds answered
// with JSON Value frames, so one TCP connection is enough to inspect a
// running server.
//
//	KindMetrics    obs.Snapshot — the DB's metrics (engine taxonomy, store
//	               occupancy, wal.*, cluster.*) plus, when the server was
//	               built WithMetrics on the same registry, the server.*
//	               instruments.
//	KindTraceDump  obs.FlightDump — the flight recorder: per request kind,
//	               the K slowest traces, K most recent errors, K most
//	               recent overall, and per-stage P50/P95/P99.
//	KindHealth     Health (below) — liveness, throughput, and per-replica
//	               watermarks/lag.

// health assembles the KindHealth view (wire.Health — shared with the
// client and cmd/rhtop).
func (s *Server) health() wire.Health {
	s.mu.Lock()
	nconns := len(s.conns)
	s.mu.Unlock()
	h := wire.Health{
		UptimeNS:      uint64(time.Since(s.start)),
		Connections:   nconns,
		Requests:      s.reqTotal.Load(),
		AwaitingApply: s.flight.AwaitingApply(),
	}
	if s.opts.replicas != nil {
		h.Replicas = s.opts.replicas()
	}
	return h
}

// writeFlightDump JSON-encodes the recorder's dump to w (Close's
// post-mortem path).
func writeFlightDump(w io.Writer, f *obs.Flight) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.Dump())
}

// handleAdmin serves the three admin kinds; m is known to be one of them.
func (c *conn) handleAdmin(m wire.Msg, tr *obs.Trace) {
	var body any
	switch m.Kind {
	case wire.KindMetrics:
		body = c.srv.db.Metrics()
	case wire.KindTraceDump:
		body = c.srv.flight.Dump()
	case wire.KindHealth:
		body = c.srv.health()
	}
	data, err := json.Marshal(body)
	if err != nil {
		c.sendT(tr, err, errMsg(m.ID, err))
		return
	}
	c.sendT(tr, nil, wire.Msg{ID: m.ID, Kind: wire.KindValue, Value: data})
}
