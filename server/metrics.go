package server

import (
	"rhtm/obs"

	"rhtm/server/wire"
)

// serverMetrics holds the network front end's pre-resolved instruments,
// following the kv layer's convention: resolve by name once at
// construction, keep the hot path allocation-free, and let a nil registry
// degrade every site to a no-op. Names extend the flat taxonomy of
// DESIGN.md §10 under the server.* prefix:
//
//	server.connections        gauge      live connections
//	server.requests{kind=K}   counter    requests received, by frame kind
//	server.batch_fill         histogram  ops merged per cross-conn Batch
//	server.request_ns         histogram  accept-to-response wall time
//	server.bytes_in           counter    frame bytes read off the wire
//	server.bytes_out          counter    frame bytes written to the wire
//	server.watch.events_lost  counter    EventLost frames pushed to clients
type serverMetrics struct {
	connections *obs.Gauge
	requests    [wire.KindHealth + 1]*obs.Counter
	batchFill   *obs.Histogram
	requestNs   *obs.Histogram
	bytesIn     *obs.Counter
	bytesOut    *obs.Counter
	watchLost   *obs.Counter
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	m := serverMetrics{
		connections: reg.Gauge("server.connections"),
		batchFill:   reg.Histogram("server.batch_fill"),
		requestNs:   reg.Histogram("server.request_ns"),
		bytesIn:     reg.Counter("server.bytes_in"),
		bytesOut:    reg.Counter("server.bytes_out"),
		watchLost:   reg.Counter("server.watch.events_lost"),
	}
	for k := wire.KindHello; k <= wire.KindMetrics; k++ {
		m.requests[k] = reg.Counter(obs.Name("server.requests", "kind", k.String()))
	}
	// Request kinds past the contiguous block (response kinds sit between
	// them in the numbering; their slots stay nil, and the nil counter
	// makes request() a no-op for misdirected response kinds).
	for _, k := range []wire.Kind{wire.KindFollowerGet, wire.KindTraceDump, wire.KindHealth} {
		m.requests[k] = reg.Counter(obs.Name("server.requests", "kind", k.String()))
	}
	return m
}

// request counts one received frame by kind; response kinds (or garbage)
// fall outside the request table and count nothing — the decoder already
// rejected anything unknown, and the dispatcher rejects misdirected
// response kinds explicitly.
func (m *serverMetrics) request(k wire.Kind) {
	if int(k) < len(m.requests) {
		m.requests[k].Inc()
	}
}
